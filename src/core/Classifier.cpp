//===- core/Classifier.cpp ------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Classifier.h"

#include "analysis/Dataflow.h"
#include "core/AnnotationVerifier.h"
#include "ir/IRPrinter.h"
#include "support/Casting.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cstdio>
#include <unordered_set>

using namespace sldb;

namespace {
/// The two deliberately *unsound* classifier faults (the fuzzing
/// oracle's teeth — see support/FaultInjector.h).  Read at analysis and
/// transfer time so arming mid-session takes effect after a cache flush.
bool suppressHoistGen() {
  return FaultInjector::armed(FaultId::ClassifierSuppressHoistGen);
}
bool suppressDeadAssignKill() {
  return FaultInjector::armed(FaultId::ClassifierSuppressDeadAssignKill);
}
} // namespace

const char *sldb::varClassName(VarClass C) {
  switch (C) {
  case VarClass::Uninitialized:
    return "uninitialized";
  case VarClass::Nonresident:
    return "nonresident";
  case VarClass::Noncurrent:
    return "noncurrent";
  case VarClass::Suspect:
    return "suspect";
  case VarClass::Current:
    return "current";
  }
  return "?";
}

const char *sldb::endangerCauseName(EndangerCause C) {
  switch (C) {
  case EndangerCause::None:
    return "none";
  case EndangerCause::Premature:
    return "premature";
  case EndangerCause::MaybePremature:
    return "maybe-premature";
  case EndangerCause::Stale:
    return "stale";
  case EndangerCause::MaybeStale:
    return "maybe-stale";
  }
  return "?";
}

Classifier::Classifier(const MachineFunction &MF, const ProgramInfo &Info,
                       bool EnableRecovery)
    : MF(MF), Info(Info), EnableRecovery(EnableRecovery) {
  NumBlocks = static_cast<unsigned>(MF.Blocks.size());
  Preds.resize(NumBlocks);
  Succs.resize(NumBlocks);
  for (unsigned B = 0; B < NumBlocks; ++B) {
    for (unsigned S : MF.Blocks[B].Succs)
      Succs[B].push_back(S);
    for (unsigned P : MF.Blocks[B].Preds)
      Preds[B].push_back(P);
    if (!MF.Blocks[B].Insts.empty() &&
        MF.Blocks[B].Insts.back().Op == MOp::RET)
      Exits.push_back(B);
  }

  // Track this function's scalar locals (the paper's figures measure
  // local variables; globals are conservatively "initialized" and always
  // memory-resident).
  for (VarId V : Info.func(MF.Id).Locals)
    if (Info.var(V).isScalar() && !VarIdx.count(V)) {
      VarIdx[V] = static_cast<unsigned>(Vars.size());
      Vars.push_back(V);
    }

  buildInitReach();
  buildHoistReach();
  buildDeadReach();

  // Fault containment: re-verify the debug bookkeeping the verdicts rest
  // on, and fold in whatever damage the pipeline already recorded.  A
  // finding attributed to a variable degrades that variable; a
  // whole-function finding (Var == InvalidVar) degrades them all — a
  // conservative SUSPECT/NONRESIDENT answer beats a crash or a false
  // CURRENT built on corrupt annotations.
  Findings = MF.IntegrityFindings;
  verifyMachineAnnotations(MF, Info, Findings);
  for (const AnnotationFinding &F : Findings) {
    if (F.Var == InvalidVar)
      DegradeAll = true;
    else
      DegradedVars.insert(F.Var);
  }
}

Classifier::AddrPos Classifier::position(std::uint32_t Addr) const {
  unsigned B = 0;
  while (B + 1 < NumBlocks && MF.BlockAddr[B + 1] <= Addr)
    ++B;
  return {B, Addr - MF.BlockAddr[B]};
}

//===----------------------------------------------------------------------===//
// Analyses
//===----------------------------------------------------------------------===//

void Classifier::buildInitReach() {
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Union;
  P.Universe = static_cast<unsigned>(Vars.size());
  P.Gen.assign(NumBlocks, BitVector(P.Universe));
  P.Kill.assign(NumBlocks, BitVector(P.Universe));
  P.Boundary = BitVector(P.Universe);

  for (unsigned B = 0; B < NumBlocks; ++B)
    for (const MInstr &I : MF.Blocks[B].Insts) {
      VarId Def = InvalidVar;
      if (I.DestVar != InvalidVar)
        Def = I.DestVar;
      else if (I.Op == MOp::MDEAD || I.Op == MOp::MAVAIL)
        Def = I.MarkVar; // Represents an eliminated source assignment.
      if (Def == InvalidVar)
        continue;
      auto It = VarIdx.find(Def);
      if (It != VarIdx.end())
        P.Gen[B].set(It->second);
    }
  InitIn = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;
}

void Classifier::buildHoistReach() {
  const unsigned U = static_cast<unsigned>(MF.HoistKeys.size());
  KeyStmt.assign(U, InvalidStmt);

  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Union;
  P.Universe = U;
  P.Gen.assign(NumBlocks, BitVector(U));
  P.Kill.assign(NumBlocks, BitVector(U));
  P.Boundary = BitVector(U);

  for (unsigned B = 0; B < NumBlocks; ++B)
    for (const MInstr &I : MF.Blocks[B].Insts) {
      // Kills first: an assignment to V kills every key assigning V; an
      // avail marker kills its own key.  The hoisted instance itself is
      // processed as gen *after* its kill (it is an assignment to V).
      if (I.DestVar != InvalidVar)
        for (unsigned K = 0; K < U; ++K)
          if (MF.HoistKeys[K].V == I.DestVar) {
            P.Gen[B].reset(K);
            P.Kill[B].set(K);
          }
      // Keys are bounds-checked (not asserted): a corrupted annotation
      // must degrade the verdict, not index out of the bit vectors.
      if (I.Op == MOp::MAVAIL && I.HoistKey != InvalidHoistKey &&
          I.HoistKey < U) {
        P.Gen[B].reset(I.HoistKey);
        P.Kill[B].set(I.HoistKey);
      }
      if (I.IsHoisted && I.DestVar != InvalidVar &&
          I.HoistKey != InvalidHoistKey && I.HoistKey < U) {
        if (!suppressHoistGen()) {
          P.Gen[B].set(I.HoistKey);
          P.Kill[B].reset(I.HoistKey);
        }
        if (KeyStmt[I.HoistKey] == InvalidStmt)
          KeyStmt[I.HoistKey] = I.Stmt;
      }
    }

  HoistSomeIn = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;
  P.Meet = FlowMeet::Intersect;
  HoistAllIn = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;
}

void Classifier::buildDeadReach() {
  // Enumerate marker instances.  The instruction pointer is the marker's
  // identity in the transfer functions (the same variable/statement pair
  // may be duplicated by unrolling); machine code is immutable for the
  // classifier's lifetime, so the pointer stays valid.
  std::uint32_t Addr = 0;
  for (unsigned B = 0; B < NumBlocks; ++B)
    for (const MInstr &I : MF.Blocks[B].Insts) {
      if (I.Op == MOp::MDEAD)
        Markers.push_back({I.MarkVar, I.MarkStmt, Addr, &I, I.Recovery});
      ++Addr;
    }
  const unsigned U = static_cast<unsigned>(Markers.size());
  const std::uint32_t Total = MF.numInstrs();

  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Union;
  P.Universe = U;
  P.Gen.assign(NumBlocks, BitVector(U));
  P.Kill.assign(NumBlocks, BitVector(U));
  P.Boundary = BitVector(U);

  Addr = 0;
  for (unsigned B = 0; B < NumBlocks; ++B)
    for (const MInstr &I : MF.Blocks[B].Insts) {
      // Real assignments to V kill V's markers; avail markers for V kill
      // too (at that point actual == expected, see header comment).
      VarId Killed = InvalidVar;
      if (I.DestVar != InvalidVar && !suppressDeadAssignKill())
        Killed = I.DestVar;
      else if (I.Op == MOp::MAVAIL)
        Killed = I.MarkVar;
      if (Killed != InvalidVar)
        for (unsigned M = 0; M < U; ++M)
          if (Markers[M].V == Killed) {
            P.Gen[B].reset(M);
            P.Kill[B].set(M);
          }
      if (I.Op == MOp::MDEAD) {
        // The *last* eliminated assignment to V defines its expected
        // value (Definition 2): a newer marker supersedes (kills) every
        // other marker of the same variable.
        for (unsigned M = 0; M < U; ++M) {
          if (Markers[M].V != I.MarkVar)
            continue;
          if (Markers[M].Addr == Addr) {
            P.Gen[B].set(M);
            P.Kill[B].reset(M);
          } else {
            P.Gen[B].reset(M);
            P.Kill[B].set(M);
          }
        }
      }
      ++Addr;
    }

  DeadSomeIn = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;
  P.Meet = FlowMeet::Intersect;
  DeadAllIn = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;

  // Recovery validity per marker.
  RecoveryValid.assign(U, BitVector(Total));
  for (unsigned M = 0; M < U; ++M) {
    const MarkerInfo &MI = Markers[M];
    switch (MI.Recovery.K) {
    case MRecovery::Kind::None:
      continue;
    case MRecovery::Kind::Imm:
    case MRecovery::Kind::FImm:
      RecoveryValid[M].set(); // Constants are always recoverable.
      continue;
    case MRecovery::Kind::InReg: {
      auto It = MF.RecoveryValidAt.find(MI.Addr);
      if (It != MF.RecoveryValidAt.end())
        RecoveryValid[M] = It->second;
      continue;
    }
    case MRecovery::Kind::InFrame: {
      // Valid at A iff *no* path from the marker to A crosses a write
      // to the slot / global after the marker (IV-invariant relations
      // survive updates).  This must be a may-taint data flow, not a
      // single forward walk: with a loop whose body writes the slot,
      // the head is reachable both write-free (first entry) and through
      // the write (back edge), and one tainted path already makes the
      // recovered value a lie on some execution (found by the
      // differential fuzzer: `v2 = v4` eliminated before a loop that
      // reassigns v4).  Re-executing the marker re-binds the recovery
      // to the slot's current value, so the marker clears the taint.
      bool IsGlobalSrc = MI.Recovery.Frame < 0;
      VarId GlobalV = static_cast<VarId>(MI.Recovery.Imm);
      auto TaintWrite = [&](const MInstr &CI) {
        if (MI.Recovery.IsIV)
          return false;
        if (CI.Op == MOp::SW || CI.Op == MOp::SD) {
          if (!IsGlobalSrc && CI.FrameSlot == MI.Recovery.Frame)
            return true;
          if (IsGlobalSrc && CI.GlobalVar == GlobalV)
            return true;
          // Register-indirect stores may alias any slot/global.
          if (CI.AddrReg.isValid())
            return true;
        }
        if (CI.Op == MOp::JAL && IsGlobalSrc)
          return true; // Callee may write the global.
        return false;
      };
      std::vector<char> TaintIn(NumBlocks, 0), TaintOut(NumBlocks, 0);
      bool FlowChanged = true;
      while (FlowChanged) {
        FlowChanged = false;
        for (unsigned B = 0; B < NumBlocks; ++B) {
          char S = 0;
          for (unsigned Pd : Preds[B])
            S |= TaintOut[Pd];
          TaintIn[B] = S;
          std::uint32_t A = MF.BlockAddr[B];
          for (const MInstr &CI : MF.Blocks[B].Insts) {
            if (A == MI.Addr)
              S = 0;
            else if (TaintWrite(CI))
              S = 1;
            ++A;
          }
          if (S != TaintOut[B]) {
            TaintOut[B] = S;
            FlowChanged = true;
          }
        }
      }
      // Stop-before semantics: validity at A reflects the state before
      // the instruction at A executes.
      for (unsigned B = 0; B < NumBlocks; ++B) {
        char S = TaintIn[B];
        std::uint32_t A = MF.BlockAddr[B];
        for (const MInstr &CI : MF.Blocks[B].Insts) {
          if (!S)
            RecoveryValid[M].set(A);
          if (A == MI.Addr)
            S = 0;
          else if (TaintWrite(CI))
            S = 1;
          ++A;
        }
      }
      RecoveryValid[M].set(MI.Addr);
      continue;
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// Per-address transfer functions and query cache
//===----------------------------------------------------------------------===//

void Classifier::initTransfer(const MInstr &I, BitVector &S) const {
  VarId Def = I.DestVar;
  if (Def == InvalidVar && (I.Op == MOp::MDEAD || I.Op == MOp::MAVAIL))
    Def = I.MarkVar;
  if (Def == InvalidVar)
    return;
  auto DIt = VarIdx.find(Def);
  if (DIt != VarIdx.end())
    S.set(DIt->second);
}

void Classifier::hoistTransfer(const MInstr &I, BitVector &S) const {
  const unsigned NumKeys = static_cast<unsigned>(MF.HoistKeys.size());
  if (I.DestVar != InvalidVar)
    for (unsigned K = 0; K < NumKeys; ++K)
      if (MF.HoistKeys[K].V == I.DestVar)
        S.reset(K);
  if (I.Op == MOp::MAVAIL && I.HoistKey != InvalidHoistKey &&
      I.HoistKey < NumKeys)
    S.reset(I.HoistKey);
  if (I.IsHoisted && I.DestVar != InvalidVar &&
      I.HoistKey != InvalidHoistKey && I.HoistKey < NumKeys &&
      !suppressHoistGen())
    S.set(I.HoistKey);
}

void Classifier::deadTransfer(const MInstr &I, BitVector &S) const {
  const unsigned NumMarkers = static_cast<unsigned>(Markers.size());
  // Real assignments to V kill V's markers; avail markers for V kill too
  // (at that point actual == expected).
  VarId Killed = InvalidVar;
  if (I.DestVar != InvalidVar && !suppressDeadAssignKill())
    Killed = I.DestVar;
  else if (I.Op == MOp::MAVAIL)
    Killed = I.MarkVar;
  if (Killed != InvalidVar)
    for (unsigned M = 0; M < NumMarkers; ++M)
      if (Markers[M].V == Killed)
        S.reset(M);
  if (I.Op == MOp::MDEAD)
    for (unsigned M = 0; M < NumMarkers; ++M) {
      if (Markers[M].V != I.MarkVar)
        continue;
      if (Markers[M].Inst == &I)
        S.set(M); // This marker supersedes all others of V.
      else
        S.reset(M);
    }
}

const Classifier::AddrState &Classifier::stateAt(std::uint32_t Addr) const {
  // The transfers read the FaultInjector's classifier faults: a test
  // arming/disarming mid-session must see fresh walks, so tag entries
  // with the injector generation and flush when it moves.
  if (Cache.empty()) {
    Cache.resize(MF.numInstrs() + 1);
    CachedFaultGen = FaultInjector::generation();
  } else if (CachedFaultGen != FaultInjector::generation()) {
    Cache.assign(Cache.size(), AddrState());
    CachedFaultGen = FaultInjector::generation();
  }
  if (Addr >= Cache.size())
    Addr = static_cast<std::uint32_t>(Cache.size() - 1);
  AddrState &E = Cache[Addr];
  static StatCounter &HitCount = Stats::counter("classifier.cache.hits");
  static StatCounter &MissCount = Stats::counter("classifier.cache.misses");
  if (E.Valid) {
    ++CacheStats.Hits;
    HitCount.add();
    return E;
  }
  ++CacheStats.Misses;
  MissCount.add();
  AddrPos P = position(Addr);
  E.Init = InitIn[P.Block];
  E.HoistSome = HoistSomeIn[P.Block];
  E.HoistAll = HoistAllIn[P.Block];
  E.DeadSome = DeadSomeIn[P.Block];
  E.DeadAll = DeadAllIn[P.Block];
  const auto &Insts = MF.Blocks[P.Block].Insts;
  const std::size_t End = P.Index < Insts.size() ? P.Index : Insts.size();
  for (std::size_t Idx = 0; Idx < End; ++Idx) {
    const MInstr &I = Insts[Idx];
    initTransfer(I, E.Init);
    hoistTransfer(I, E.HoistSome);
    hoistTransfer(I, E.HoistAll);
    deadTransfer(I, E.DeadSome);
    deadTransfer(I, E.DeadAll);
  }
  E.Valid = true;
  return E;
}

//===----------------------------------------------------------------------===//
// Classification (Figure 1)
//===----------------------------------------------------------------------===//

Classification Classifier::classifyDegraded(std::uint32_t Addr, VarId V,
                                            Explanation *E) const {
  // Fail-safe path for variables whose bookkeeping failed verification.
  // Only facts a corrupt annotation cannot skew toward optimism are
  // used: initialization reach (losing a marker only *clears* a def,
  // erring toward Uninitialized) and the storage home's kind.  Hoist and
  // dead reach, residence bits, and recovery are all distrusted, so the
  // verdict is never Current and never Recoverable — memory-resident
  // homes answer Suspect, register homes and the rest Nonresident.
  Classification C;
  C.Degraded = true;
  const VarInfo &VI = Info.var(V);

  if (E) {
    E->DegradedPath = true;
    for (const AnnotationFinding &F : Findings)
      if (F.Var == V || F.Var == InvalidVar)
        E->Findings.push_back(F);
    E->Storage = renderStorage(V);
  }
  auto Done = [&](const char *Rule) {
    if (E) {
      E->Rule = Rule;
      E->Result = C;
    }
    return C;
  };

  if (VI.Storage != StorageKind::Global) {
    auto It = VarIdx.find(V);
    bool Tracked = It != VarIdx.end();
    bool Reached = Tracked && stateAt(Addr).Init.test(It->second);
    if (E) {
      E->InitTracked = Tracked;
      E->InitReached = Reached;
    }
    if (!Reached) {
      C.Kind = VarClass::Uninitialized;
      return Done("degraded: init-reach (uninitialized)");
    }
  } else if (E) {
    E->GlobalAssumedInit = true;
  }

  if (VI.Storage == StorageKind::Global) {
    C.Kind = VarClass::Suspect;
    C.Cause = EndangerCause::MaybeStale;
    return Done("degraded: memory home (suspect)");
  }
  auto SIt = MF.Storage.find(V);
  if (SIt != MF.Storage.end() && SIt->second.K == VarStorage::Kind::Frame) {
    C.Kind = VarClass::Suspect;
    C.Cause = EndangerCause::MaybeStale;
    return Done("degraded: memory home (suspect)");
  }
  C.Kind = VarClass::Nonresident;
  return Done("degraded: register home (nonresident)");
}

Classification Classifier::classify(std::uint32_t Addr, VarId V,
                                    Explanation *E) const {
  // Registry lookups are a lock + map probe; resolve the counters once.
  static StatCounter &QueryCount = Stats::counter("classifier.queries");
  QueryCount.add();
  if (E) {
    E->V = V;
    E->Addr = Addr;
    E->RecoveryEnabled = EnableRecovery;
  }
  if (DegradeAll || DegradedVars.count(V) != 0) {
    static StatCounter &DegradedCount =
        Stats::counter("classifier.queries.degraded");
    DegradedCount.add();
    return classifyDegraded(Addr, V, E);
  }

  Classification C;
  const VarInfo &VI = Info.var(V);
  const AddrState &AS = stateAt(Addr);

  auto Done = [&](const char *Rule) {
    if (E) {
      E->Rule = Rule;
      E->Result = C;
    }
    return C;
  };

  // Provenance is recorded as pure reads of the same per-address state
  // the verdict uses; nothing below branches on E except the recording
  // itself, so explain mode cannot perturb the decision.
  if (E) {
    for (unsigned K = 0; K < MF.HoistKeys.size(); ++K) {
      if (MF.HoistKeys[K].V != V)
        continue;
      E->Hoists.push_back({K, KeyStmt[K], renderHoistKeyExpr(K),
                           AS.HoistSome.test(K), AS.HoistAll.test(K)});
    }
    for (unsigned M = 0; M < Markers.size(); ++M) {
      if (Markers[M].V != V)
        continue;
      E->Deads.push_back({M, Markers[M].Stmt, Markers[M].Addr,
                          AS.DeadSome.test(M), AS.DeadAll.test(M),
                          renderRecovery(Markers[M].Recovery),
                          Addr < RecoveryValid[M].size() &&
                              RecoveryValid[M].test(Addr)});
    }
  }

  // 1. Initialization (locals only; globals assumed initialized).
  if (VI.Storage != StorageKind::Global) {
    auto It = VarIdx.find(V);
    // A variable the function never touches is in scope but was never
    // assigned (or its assignments were all optimized away with no
    // marker, which cannot happen) — uninitialized.
    bool Tracked = It != VarIdx.end();
    bool Reached = Tracked && AS.Init.test(It->second);
    if (E) {
      E->InitTracked = Tracked;
      E->InitReached = Reached;
    }
    if (!Reached) {
      C.Kind = VarClass::Uninitialized;
      return Done("init-reach (uninitialized)");
    }
  } else if (E) {
    E->GlobalAssumedInit = true;
  }

  // 2. Recovery (paper §2.5): if on *all* paths the expected value of V
  // stems from one eliminated assignment whose right-hand side survives
  // (in a temporary, a variable, or as a constant), the dead reach of V
  // is killed by the surviving expression and V's residence is the
  // expression's storage — the debugger displays the expected value with
  // no further warning ("these two variables are aliased").
  //
  // We therefore evaluate dead-reach-with-recovery before the residence
  // check: recovery supplies residence.
  const unsigned NumMarkers = static_cast<unsigned>(Markers.size());
  bool DeadAll = false, DeadSome = false;
  int DeadAllMarker = -1;
  unsigned DeadAllCount = 0;
  for (unsigned M = 0; M < NumMarkers; ++M) {
    if (Markers[M].V != V)
      continue;
    if (AS.DeadAll.test(M)) {
      DeadAll = true;
      DeadAllMarker = static_cast<int>(M);
      ++DeadAllCount;
    } else if (AS.DeadSome.test(M)) {
      DeadSome = true;
    }
  }
  if (EnableRecovery && DeadAll && DeadAllCount == 1 &&
      Markers[DeadAllMarker].Recovery.K != MRecovery::Kind::None &&
      Addr < RecoveryValid[DeadAllMarker].size() &&
      RecoveryValid[DeadAllMarker].test(Addr)) {
    if (E)
      E->RecoveryAttempted = true;
    // Variable-sourced recovery (`c = a` eliminated, recover c from a) is
    // only sound if `a` itself holds its expected value at the marker: if
    // any dead marker or hoisted instance of `a` can reach the marker,
    // the alias would launder an endangered value (the extreme case is a
    // deleted self-copy `v = v`).
    bool SrcSound = true;
    VarId Src = Markers[DeadAllMarker].Recovery.SrcVar;
    if (Src != InvalidVar) {
      std::uint32_t MAddr = Markers[DeadAllMarker].Addr;
      if (Src == V) {
        SrcSound = false; // Self-referential alias: never trustworthy.
        if (E)
          E->RecoveryNote = "rejected: self-referential alias";
      } else {
        // Marker addresses are fixed, so these states come from the same
        // per-address cache as the breakpoint's own.
        const AddrState &MS = stateAt(MAddr);
        for (unsigned M = 0; M < NumMarkers && SrcSound; ++M)
          if (Markers[M].V == Src && MS.DeadSome.test(M))
            SrcSound = false;
        for (unsigned K = 0; K < MF.HoistKeys.size() && SrcSound; ++K)
          if (MF.HoistKeys[K].V == Src && MS.HoistSome.test(K))
            SrcSound = false;
        if (!SrcSound && E)
          E->RecoveryNote = "rejected: source variable '" +
                            Info.var(Src).Name +
                            "' is itself endangered at the marker";
      }
    }
    if (SrcSound) {
      C.Kind = VarClass::Current;
      C.Recoverable = true;
      C.Recovery = Markers[DeadAllMarker].Recovery;
      C.CulpritStmt = Markers[DeadAllMarker].Stmt;
      return Done("recovery (paper 2.5)");
    }
  } else if (E && DeadAll) {
    if (!EnableRecovery)
      E->RecoveryNote = "not attempted: recovery disabled";
    else if (DeadAllCount != 1)
      E->RecoveryNote =
          "not attempted: multiple eliminated assignments reach on all paths";
    else if (Markers[DeadAllMarker].Recovery.K == MRecovery::Kind::None)
      E->RecoveryNote =
          "not attempted: the eliminated value survives nowhere";
    else
      E->RecoveryNote =
          "not attempted: the surviving copy is overwritten by this point";
  }

  // 3. Residence (the conservative live-range model of [3]).
  bool Resident = true;
  if (VI.Storage == StorageKind::Global) {
    Resident = true;
  } else {
    auto SIt = MF.Storage.find(V);
    if (SIt == MF.Storage.end() || SIt->second.K == VarStorage::Kind::None) {
      Resident = false;
    } else if (SIt->second.K == VarStorage::Kind::InReg) {
      auto RIt = MF.ResidentAt.find(V);
      Resident = RIt != MF.ResidentAt.end() && Addr < RIt->second.size() &&
                 RIt->second.test(Addr);
    }
  }
  if (E) {
    E->ResidenceConsulted = true;
    E->Resident = Resident;
    E->Storage = renderStorage(V);
  }
  if (!Resident) {
    C.Kind = VarClass::Nonresident;
    return Done("residence (nonresident)");
  }

  // 4. Hoist reach (Lemmas 2 and 3).
  const unsigned NumKeys = static_cast<unsigned>(MF.HoistKeys.size());
  bool HoistAll = false, HoistSome = false;
  StmtId HoistStmt = InvalidStmt;
  for (unsigned K = 0; K < NumKeys; ++K) {
    if (MF.HoistKeys[K].V != V)
      continue;
    if (AS.HoistAll.test(K)) {
      HoistAll = true;
      HoistStmt = KeyStmt[K];
    } else if (AS.HoistSome.test(K)) {
      HoistSome = true;
      HoistStmt = KeyStmt[K];
    }
  }
  if (HoistAll) {
    C.Kind = VarClass::Noncurrent;
    C.Cause = EndangerCause::Premature;
    C.CulpritStmt = HoistStmt;
    return Done("hoist-all (Lemma 2)");
  }

  // 5. Dead reach without recovery (Lemmas 4 and 5).
  if (DeadAll) {
    C.Kind = VarClass::Noncurrent;
    C.Cause = EndangerCause::Stale;
    C.CulpritStmt = Markers[DeadAllMarker].Stmt;
    return Done("dead-all (Lemma 5)");
  }

  // 6. Suspect (Lemmas 3 and 6).
  if (HoistSome) {
    C.Kind = VarClass::Suspect;
    C.Cause = EndangerCause::MaybePremature;
    C.CulpritStmt = HoistStmt;
    return Done("hoist-some (Lemma 3)");
  }
  if (DeadSome) {
    C.Kind = VarClass::Suspect;
    C.Cause = EndangerCause::MaybeStale;
    return Done("dead-some (Lemma 6)");
  }

  C.Kind = VarClass::Current;
  return Done("current (no endangerment reaches)");
}

Explanation Classifier::explain(std::uint32_t Addr, VarId V) const {
  Explanation E;
  classify(Addr, V, &E);
  return E;
}

std::vector<Classification>
Classifier::classifyAll(std::uint32_t Addr,
                        const std::vector<VarId> &Vs) const {
  // Warm the per-address cache once, then every classify() in the sweep
  // is a pure bit-vector probe against the shared solution.
  (void)stateAt(Addr);
  std::vector<Classification> Cs;
  Cs.reserve(Vs.size());
  for (VarId V : Vs)
    Cs.push_back(classify(Addr, V));
  return Cs;
}

//===----------------------------------------------------------------------===//
// Explain mode: provenance rendering
//===----------------------------------------------------------------------===//

std::string Classifier::renderHoistKeyExpr(unsigned Key) const {
  const HoistKey &HK = MF.HoistKeys[Key];
  auto Operand = [&](const Value &Val) -> std::string {
    switch (Val.K) {
    case Value::Kind::None:
      return "";
    case Value::Kind::Temp:
      return "t" + std::to_string(Val.Id);
    case Value::Kind::Var:
      return Info.var(Val.Id).Name;
    case Value::Kind::ConstInt:
      return std::to_string(Val.IntVal);
    case Value::Kind::ConstDouble: {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%g", Val.DblVal);
      return Buf;
    }
    }
    return "";
  };
  std::string S = Info.var(HK.V).Name + " = " + opcodeName(HK.Op);
  std::string A = Operand(HK.A), B = Operand(HK.B);
  if (!A.empty())
    S += " " + A;
  if (!B.empty())
    S += ", " + B;
  return S;
}

std::string Classifier::renderRecovery(const MRecovery &R) const {
  std::string S;
  switch (R.K) {
  case MRecovery::Kind::None:
    return "";
  case MRecovery::Kind::Imm:
    S = "constant " + std::to_string(R.Imm);
    break;
  case MRecovery::Kind::FImm: {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "constant %g", R.FImm);
    S = Buf;
    break;
  }
  case MRecovery::Kind::InReg:
    S = "register " + R.R.str();
    break;
  case MRecovery::Kind::InFrame:
    if (R.Frame < 0)
      S = "global '" + Info.var(static_cast<VarId>(R.Imm)).Name + "'";
    else
      S = "frame slot " + std::to_string(R.Frame);
    break;
  }
  if (R.SrcVar != InvalidVar)
    S += " (variable '" + Info.var(R.SrcVar).Name + "')";
  if (R.Scale != 1)
    S += " scaled by 1/" + std::to_string(R.Scale);
  if (R.IsIV)
    S += " [loop-invariant relation]";
  return S;
}

std::string Classifier::renderStorage(VarId V) const {
  if (Info.var(V).Storage == StorageKind::Global)
    return "global memory";
  auto It = MF.Storage.find(V);
  if (It != MF.Storage.end()) {
    switch (It->second.K) {
    case VarStorage::Kind::InReg:
      return "register " + It->second.R.str();
    case VarStorage::Kind::Frame:
      return "frame slot " + std::to_string(It->second.Frame);
    case VarStorage::Kind::GlobalMem:
      return "global memory";
    case VarStorage::Kind::None:
      break;
    }
  }
  return "no storage home (never materialized)";
}

std::string Classifier::renderExplainText(const Explanation &X) const {
  const std::string &Name = Info.var(X.V).Name;
  const FuncInfo &FI = Info.func(MF.Id);
  std::string S;

  S += "explain '" + Name + "' at " + MF.Name + "+" + std::to_string(X.Addr);
  for (StmtId St = 0; St < MF.StmtAddr.size(); ++St)
    if (MF.StmtAddr[St] >= 0 &&
        MF.StmtAddr[St] == static_cast<std::int32_t>(X.Addr)) {
      S += " (stmt " + std::to_string(St);
      if (St < FI.Stmts.size() && FI.Stmts[St].Loc.isValid())
        S += ", line " + std::to_string(FI.Stmts[St].Loc.Line);
      S += ")";
      break;
    }
  S += "\n";

  S += "verdict: ";
  S += varClassName(X.Result.Kind);
  if (X.Result.Cause != EndangerCause::None) {
    S += " (";
    S += endangerCauseName(X.Result.Cause);
    S += ")";
  }
  if (X.Result.Recoverable)
    S += " [recoverable]";
  if (X.Result.Degraded)
    S += " [degraded]";
  S += "\n";

  S += "provenance:\n";

  if (X.DegradedPath) {
    S += "  degraded: the debug annotations for this variable failed "
         "integrity verification; fail-safe path used\n";
    for (const AnnotationFinding &F : X.Findings)
      S += "    finding: " + F.Message + "\n";
  }

  if (X.GlobalAssumedInit)
    S += "  init-reach: '" + Name + "' is a global, assumed initialized\n";
  else if (!X.InitTracked)
    S += "  init-reach: the function never assigns '" + Name + "'\n";
  else if (!X.InitReached)
    S += "  init-reach: no definition of '" + Name +
         "' reaches this point\n";
  else
    S += "  init-reach: a definition of '" + Name + "' reaches this point\n";

  if (X.DegradedPath) {
    // Degraded verdicts come from the storage table alone; the normal
    // chain below was distrusted wholesale.
    S += "  storage: " + X.Storage + "\n";
    S += "  hoist-reach, dead-reach, residence, recovery: distrusted "
         "(annotations failed verification)\n";
  } else {
    const bool InitDecided = X.Result.Kind == VarClass::Uninitialized;

    S += "  recovery (paper 2.5): ";
    if (InitDecided) {
      S += "not consulted (decided at init-reach)";
    } else if (X.Result.Recoverable) {
      S += "expected value recovered";
      for (const Explanation::DeadFact &D : X.Deads)
        if (D.AllPath && !D.Recovery.empty()) {
          S += " from " + D.Recovery;
          break;
        }
    } else if (!X.RecoveryNote.empty()) {
      S += X.RecoveryNote;
    } else if (!X.RecoveryEnabled) {
      S += "disabled";
    } else {
      S += "no eliminated assignment of '" + Name +
           "' reaches on all paths";
    }
    S += "\n";

    S += "  residence: ";
    if (X.Result.Recoverable)
      S += "supplied by the recovery source";
    else if (!X.ResidenceConsulted)
      S += "not consulted (decided earlier)";
    else
      S += X.Storage + (X.Resident ? " -- resident here"
                                   : " -- not resident here");
    S += "\n";

    if (X.Hoists.empty()) {
      S += "  hoist-reach: no hoisted assignment of '" + Name +
           "' exists\n";
    } else {
      S += "  hoist-reach:\n";
      for (const Explanation::HoistFact &H : X.Hoists) {
        S += "    key#" + std::to_string(H.Key) + " '" + H.Expr + "'";
        if (H.Stmt != InvalidStmt)
          S += " (stmt " + std::to_string(H.Stmt) + ")";
        S += ": ";
        if (H.AllPath)
          S += "hoisted instance reaches on ALL paths [Lemma 2]";
        else if (H.SomePath)
          S += "hoisted instance reaches on SOME paths [Lemma 3]";
        else
          S += "no hoisted instance reaches";
        S += "\n";
      }
    }

    if (X.Deads.empty()) {
      S += "  dead-reach: no eliminated assignment of '" + Name +
           "' exists\n";
    } else {
      S += "  dead-reach:\n";
      for (const Explanation::DeadFact &D : X.Deads) {
        S += "    marker@" + MF.Name + "+" + std::to_string(D.MarkerAddr);
        if (D.Stmt != InvalidStmt)
          S += " (stmt " + std::to_string(D.Stmt) + ")";
        S += ": ";
        if (D.AllPath)
          S += "eliminated assignment reaches on ALL paths [Lemma 5]";
        else if (D.SomePath)
          S += "eliminated assignment reaches on SOME paths [Lemma 6]";
        else
          S += "does not reach";
        if (!D.Recovery.empty()) {
          S += "; value survives in " + D.Recovery;
          S += D.RecoveryValidHere ? " (valid here)" : " (not valid here)";
        }
        S += "\n";
      }
    }
  }

  S += "rule: " + X.Rule + "\n";
  std::string W = warningText(X.Result, X.V);
  S += "warning: " + (W.empty() ? std::string("none") : W) + "\n";
  return S;
}

std::string Classifier::renderExplainJson(const Explanation &X) const {
  std::string S = "{";
  auto Raw = [&S](const char *K, const std::string &V) {
    appendJsonString(S, K);
    S += ':';
    S += V;
  };
  auto Str = [&S](const char *K, const std::string &V) {
    appendJsonString(S, K);
    S += ':';
    appendJsonString(S, V);
  };
  auto Bool = [&Raw](const char *K, bool V) { Raw(K, V ? "true" : "false"); };
  auto Stmt = [](StmtId St) {
    return St == InvalidStmt ? std::string("-1") : std::to_string(St);
  };

  Str("var", Info.var(X.V).Name);
  S += ',';
  Raw("varId", std::to_string(X.V));
  S += ',';
  Str("function", MF.Name);
  S += ',';
  Raw("addr", std::to_string(X.Addr));
  S += ',';

  S += "\"verdict\":{";
  Str("class", varClassName(X.Result.Kind));
  S += ',';
  Str("cause", endangerCauseName(X.Result.Cause));
  S += ',';
  Raw("culpritStmt", Stmt(X.Result.CulpritStmt));
  S += ',';
  Bool("recoverable", X.Result.Recoverable);
  S += ',';
  Bool("degraded", X.Result.Degraded);
  S += ',';
  Str("warning", warningText(X.Result, X.V));
  S += "},";

  Bool("degradedPath", X.DegradedPath);
  S += ',';
  S += "\"findings\":[";
  for (std::size_t I = 0; I < X.Findings.size(); ++I) {
    if (I)
      S += ',';
    appendJsonString(S, X.Findings[I].Message);
  }
  S += "],";

  S += "\"init\":{";
  Bool("globalAssumed", X.GlobalAssumedInit);
  S += ',';
  Bool("tracked", X.InitTracked);
  S += ',';
  Bool("reached", X.InitReached);
  S += "},";

  S += "\"recovery\":{";
  Bool("enabled", X.RecoveryEnabled);
  S += ',';
  Bool("attempted", X.RecoveryAttempted);
  S += ',';
  Str("note", X.RecoveryNote);
  S += "},";

  S += "\"residence\":{";
  Bool("consulted", X.ResidenceConsulted);
  S += ',';
  Bool("resident", X.Resident);
  S += ',';
  Str("storage", X.Storage);
  S += "},";

  S += "\"hoistReach\":[";
  for (std::size_t I = 0; I < X.Hoists.size(); ++I) {
    const Explanation::HoistFact &H = X.Hoists[I];
    if (I)
      S += ',';
    S += '{';
    Raw("key", std::to_string(H.Key));
    S += ',';
    Raw("stmt", Stmt(H.Stmt));
    S += ',';
    Str("expr", H.Expr);
    S += ',';
    Bool("somePath", H.SomePath);
    S += ',';
    Bool("allPath", H.AllPath);
    S += '}';
  }
  S += "],";

  S += "\"deadReach\":[";
  for (std::size_t I = 0; I < X.Deads.size(); ++I) {
    const Explanation::DeadFact &D = X.Deads[I];
    if (I)
      S += ',';
    S += '{';
    Raw("marker", std::to_string(D.Marker));
    S += ',';
    Raw("stmt", Stmt(D.Stmt));
    S += ',';
    Raw("addr", std::to_string(D.MarkerAddr));
    S += ',';
    Bool("somePath", D.SomePath);
    S += ',';
    Bool("allPath", D.AllPath);
    S += ',';
    Str("recovery", D.Recovery);
    S += ',';
    Bool("validHere", D.RecoveryValidHere);
    S += '}';
  }
  S += "],";

  Str("rule", X.Rule);
  S += '}';
  return S;
}

std::string Classifier::warningText(const Classification &C, VarId V) const {
  const std::string &Name = Info.var(V).Name;
  auto StmtRef = [&](StmtId S) {
    return S == InvalidStmt ? std::string("an optimized statement")
                            : "statement " + std::to_string(S);
  };
  if (C.Degraded)
    return "'" + Name + "' is " + varClassName(C.Kind) +
           " (conservative: the debug annotations for this variable "
           "failed integrity verification)";
  switch (C.Kind) {
  case VarClass::Current:
    return "";
  case VarClass::Uninitialized:
    return "'" + Name + "' is uninitialized here";
  case VarClass::Nonresident:
    return "value of '" + Name +
           "' is unavailable (register reused by the allocator)";
  case VarClass::Noncurrent:
    if (C.Cause == EndangerCause::Premature)
      return "'" + Name + "' is noncurrent: the assignment at " +
             StmtRef(C.CulpritStmt) + " has already executed (hoisted)";
    if (C.Recoverable)
      return "'" + Name + "' is noncurrent: the assignment at " +
             StmtRef(C.CulpritStmt) +
             " was eliminated; expected value recovered from a temporary";
    return "'" + Name + "' is noncurrent: the assignment at " +
           StmtRef(C.CulpritStmt) +
           " was eliminated; the displayed value is stale";
  case VarClass::Suspect:
    if (C.Cause == EndangerCause::MaybePremature)
      return "'" + Name + "' is suspect: the assignment at " +
             StmtRef(C.CulpritStmt) +
             " may have executed prematurely on the path taken";
    return "'" + Name +
           "' is suspect: an eliminated assignment may make this value "
           "stale on the path taken";
  }
  return "";
}
