//===- core/Classifier.cpp ------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Classifier.h"

#include "analysis/Dataflow.h"
#include "core/AnnotationVerifier.h"
#include "support/Casting.h"

#include <unordered_set>

using namespace sldb;

namespace {
/// The two deliberately *unsound* classifier faults (the fuzzing
/// oracle's teeth — see support/FaultInjector.h).  Read at analysis and
/// transfer time so arming mid-session takes effect after a cache flush.
bool suppressHoistGen() {
  return FaultInjector::armed(FaultId::ClassifierSuppressHoistGen);
}
bool suppressDeadAssignKill() {
  return FaultInjector::armed(FaultId::ClassifierSuppressDeadAssignKill);
}
} // namespace

const char *sldb::varClassName(VarClass C) {
  switch (C) {
  case VarClass::Uninitialized:
    return "uninitialized";
  case VarClass::Nonresident:
    return "nonresident";
  case VarClass::Noncurrent:
    return "noncurrent";
  case VarClass::Suspect:
    return "suspect";
  case VarClass::Current:
    return "current";
  }
  return "?";
}

Classifier::Classifier(const MachineFunction &MF, const ProgramInfo &Info,
                       bool EnableRecovery)
    : MF(MF), Info(Info), EnableRecovery(EnableRecovery) {
  NumBlocks = static_cast<unsigned>(MF.Blocks.size());
  Preds.resize(NumBlocks);
  Succs.resize(NumBlocks);
  for (unsigned B = 0; B < NumBlocks; ++B) {
    for (unsigned S : MF.Blocks[B].Succs)
      Succs[B].push_back(S);
    for (unsigned P : MF.Blocks[B].Preds)
      Preds[B].push_back(P);
    if (!MF.Blocks[B].Insts.empty() &&
        MF.Blocks[B].Insts.back().Op == MOp::RET)
      Exits.push_back(B);
  }

  // Track this function's scalar locals (the paper's figures measure
  // local variables; globals are conservatively "initialized" and always
  // memory-resident).
  for (VarId V : Info.func(MF.Id).Locals)
    if (Info.var(V).isScalar() && !VarIdx.count(V)) {
      VarIdx[V] = static_cast<unsigned>(Vars.size());
      Vars.push_back(V);
    }

  buildInitReach();
  buildHoistReach();
  buildDeadReach();

  // Fault containment: re-verify the debug bookkeeping the verdicts rest
  // on, and fold in whatever damage the pipeline already recorded.  A
  // finding attributed to a variable degrades that variable; a
  // whole-function finding (Var == InvalidVar) degrades them all — a
  // conservative SUSPECT/NONRESIDENT answer beats a crash or a false
  // CURRENT built on corrupt annotations.
  Findings = MF.IntegrityFindings;
  verifyMachineAnnotations(MF, Info, Findings);
  for (const AnnotationFinding &F : Findings) {
    if (F.Var == InvalidVar)
      DegradeAll = true;
    else
      DegradedVars.insert(F.Var);
  }
}

Classifier::AddrPos Classifier::position(std::uint32_t Addr) const {
  unsigned B = 0;
  while (B + 1 < NumBlocks && MF.BlockAddr[B + 1] <= Addr)
    ++B;
  return {B, Addr - MF.BlockAddr[B]};
}

//===----------------------------------------------------------------------===//
// Analyses
//===----------------------------------------------------------------------===//

void Classifier::buildInitReach() {
  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Union;
  P.Universe = static_cast<unsigned>(Vars.size());
  P.Gen.assign(NumBlocks, BitVector(P.Universe));
  P.Kill.assign(NumBlocks, BitVector(P.Universe));
  P.Boundary = BitVector(P.Universe);

  for (unsigned B = 0; B < NumBlocks; ++B)
    for (const MInstr &I : MF.Blocks[B].Insts) {
      VarId Def = InvalidVar;
      if (I.DestVar != InvalidVar)
        Def = I.DestVar;
      else if (I.Op == MOp::MDEAD || I.Op == MOp::MAVAIL)
        Def = I.MarkVar; // Represents an eliminated source assignment.
      if (Def == InvalidVar)
        continue;
      auto It = VarIdx.find(Def);
      if (It != VarIdx.end())
        P.Gen[B].set(It->second);
    }
  InitIn = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;
}

void Classifier::buildHoistReach() {
  const unsigned U = static_cast<unsigned>(MF.HoistKeys.size());
  KeyStmt.assign(U, InvalidStmt);

  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Union;
  P.Universe = U;
  P.Gen.assign(NumBlocks, BitVector(U));
  P.Kill.assign(NumBlocks, BitVector(U));
  P.Boundary = BitVector(U);

  for (unsigned B = 0; B < NumBlocks; ++B)
    for (const MInstr &I : MF.Blocks[B].Insts) {
      // Kills first: an assignment to V kills every key assigning V; an
      // avail marker kills its own key.  The hoisted instance itself is
      // processed as gen *after* its kill (it is an assignment to V).
      if (I.DestVar != InvalidVar)
        for (unsigned K = 0; K < U; ++K)
          if (MF.HoistKeys[K].V == I.DestVar) {
            P.Gen[B].reset(K);
            P.Kill[B].set(K);
          }
      // Keys are bounds-checked (not asserted): a corrupted annotation
      // must degrade the verdict, not index out of the bit vectors.
      if (I.Op == MOp::MAVAIL && I.HoistKey != InvalidHoistKey &&
          I.HoistKey < U) {
        P.Gen[B].reset(I.HoistKey);
        P.Kill[B].set(I.HoistKey);
      }
      if (I.IsHoisted && I.DestVar != InvalidVar &&
          I.HoistKey != InvalidHoistKey && I.HoistKey < U) {
        if (!suppressHoistGen()) {
          P.Gen[B].set(I.HoistKey);
          P.Kill[B].reset(I.HoistKey);
        }
        if (KeyStmt[I.HoistKey] == InvalidStmt)
          KeyStmt[I.HoistKey] = I.Stmt;
      }
    }

  HoistSomeIn = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;
  P.Meet = FlowMeet::Intersect;
  HoistAllIn = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;
}

void Classifier::buildDeadReach() {
  // Enumerate marker instances.  The instruction pointer is the marker's
  // identity in the transfer functions (the same variable/statement pair
  // may be duplicated by unrolling); machine code is immutable for the
  // classifier's lifetime, so the pointer stays valid.
  std::uint32_t Addr = 0;
  for (unsigned B = 0; B < NumBlocks; ++B)
    for (const MInstr &I : MF.Blocks[B].Insts) {
      if (I.Op == MOp::MDEAD)
        Markers.push_back({I.MarkVar, I.MarkStmt, Addr, &I, I.Recovery});
      ++Addr;
    }
  const unsigned U = static_cast<unsigned>(Markers.size());
  const std::uint32_t Total = MF.numInstrs();

  DataflowProblem P;
  P.Dir = FlowDir::Forward;
  P.Meet = FlowMeet::Union;
  P.Universe = U;
  P.Gen.assign(NumBlocks, BitVector(U));
  P.Kill.assign(NumBlocks, BitVector(U));
  P.Boundary = BitVector(U);

  Addr = 0;
  for (unsigned B = 0; B < NumBlocks; ++B)
    for (const MInstr &I : MF.Blocks[B].Insts) {
      // Real assignments to V kill V's markers; avail markers for V kill
      // too (at that point actual == expected, see header comment).
      VarId Killed = InvalidVar;
      if (I.DestVar != InvalidVar && !suppressDeadAssignKill())
        Killed = I.DestVar;
      else if (I.Op == MOp::MAVAIL)
        Killed = I.MarkVar;
      if (Killed != InvalidVar)
        for (unsigned M = 0; M < U; ++M)
          if (Markers[M].V == Killed) {
            P.Gen[B].reset(M);
            P.Kill[B].set(M);
          }
      if (I.Op == MOp::MDEAD) {
        // The *last* eliminated assignment to V defines its expected
        // value (Definition 2): a newer marker supersedes (kills) every
        // other marker of the same variable.
        for (unsigned M = 0; M < U; ++M) {
          if (Markers[M].V != I.MarkVar)
            continue;
          if (Markers[M].Addr == Addr) {
            P.Gen[B].set(M);
            P.Kill[B].reset(M);
          } else {
            P.Gen[B].reset(M);
            P.Kill[B].set(M);
          }
        }
      }
      ++Addr;
    }

  DeadSomeIn = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;
  P.Meet = FlowMeet::Intersect;
  DeadAllIn = solveDataflowGeneric(NumBlocks, Preds, Succs, Exits, P).In;

  // Recovery validity per marker.
  RecoveryValid.assign(U, BitVector(Total));
  for (unsigned M = 0; M < U; ++M) {
    const MarkerInfo &MI = Markers[M];
    switch (MI.Recovery.K) {
    case MRecovery::Kind::None:
      continue;
    case MRecovery::Kind::Imm:
    case MRecovery::Kind::FImm:
      RecoveryValid[M].set(); // Constants are always recoverable.
      continue;
    case MRecovery::Kind::InReg: {
      auto It = MF.RecoveryValidAt.find(MI.Addr);
      if (It != MF.RecoveryValidAt.end())
        RecoveryValid[M] = It->second;
      continue;
    }
    case MRecovery::Kind::InFrame: {
      // Valid at A iff *no* path from the marker to A crosses a write
      // to the slot / global after the marker (IV-invariant relations
      // survive updates).  This must be a may-taint data flow, not a
      // single forward walk: with a loop whose body writes the slot,
      // the head is reachable both write-free (first entry) and through
      // the write (back edge), and one tainted path already makes the
      // recovered value a lie on some execution (found by the
      // differential fuzzer: `v2 = v4` eliminated before a loop that
      // reassigns v4).  Re-executing the marker re-binds the recovery
      // to the slot's current value, so the marker clears the taint.
      bool IsGlobalSrc = MI.Recovery.Frame < 0;
      VarId GlobalV = static_cast<VarId>(MI.Recovery.Imm);
      auto TaintWrite = [&](const MInstr &CI) {
        if (MI.Recovery.IsIV)
          return false;
        if (CI.Op == MOp::SW || CI.Op == MOp::SD) {
          if (!IsGlobalSrc && CI.FrameSlot == MI.Recovery.Frame)
            return true;
          if (IsGlobalSrc && CI.GlobalVar == GlobalV)
            return true;
          // Register-indirect stores may alias any slot/global.
          if (CI.AddrReg.isValid())
            return true;
        }
        if (CI.Op == MOp::JAL && IsGlobalSrc)
          return true; // Callee may write the global.
        return false;
      };
      std::vector<char> TaintIn(NumBlocks, 0), TaintOut(NumBlocks, 0);
      bool FlowChanged = true;
      while (FlowChanged) {
        FlowChanged = false;
        for (unsigned B = 0; B < NumBlocks; ++B) {
          char S = 0;
          for (unsigned Pd : Preds[B])
            S |= TaintOut[Pd];
          TaintIn[B] = S;
          std::uint32_t A = MF.BlockAddr[B];
          for (const MInstr &CI : MF.Blocks[B].Insts) {
            if (A == MI.Addr)
              S = 0;
            else if (TaintWrite(CI))
              S = 1;
            ++A;
          }
          if (S != TaintOut[B]) {
            TaintOut[B] = S;
            FlowChanged = true;
          }
        }
      }
      // Stop-before semantics: validity at A reflects the state before
      // the instruction at A executes.
      for (unsigned B = 0; B < NumBlocks; ++B) {
        char S = TaintIn[B];
        std::uint32_t A = MF.BlockAddr[B];
        for (const MInstr &CI : MF.Blocks[B].Insts) {
          if (!S)
            RecoveryValid[M].set(A);
          if (A == MI.Addr)
            S = 0;
          else if (TaintWrite(CI))
            S = 1;
          ++A;
        }
      }
      RecoveryValid[M].set(MI.Addr);
      continue;
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// Per-address transfer functions and query cache
//===----------------------------------------------------------------------===//

void Classifier::initTransfer(const MInstr &I, BitVector &S) const {
  VarId Def = I.DestVar;
  if (Def == InvalidVar && (I.Op == MOp::MDEAD || I.Op == MOp::MAVAIL))
    Def = I.MarkVar;
  if (Def == InvalidVar)
    return;
  auto DIt = VarIdx.find(Def);
  if (DIt != VarIdx.end())
    S.set(DIt->second);
}

void Classifier::hoistTransfer(const MInstr &I, BitVector &S) const {
  const unsigned NumKeys = static_cast<unsigned>(MF.HoistKeys.size());
  if (I.DestVar != InvalidVar)
    for (unsigned K = 0; K < NumKeys; ++K)
      if (MF.HoistKeys[K].V == I.DestVar)
        S.reset(K);
  if (I.Op == MOp::MAVAIL && I.HoistKey != InvalidHoistKey &&
      I.HoistKey < NumKeys)
    S.reset(I.HoistKey);
  if (I.IsHoisted && I.DestVar != InvalidVar &&
      I.HoistKey != InvalidHoistKey && I.HoistKey < NumKeys &&
      !suppressHoistGen())
    S.set(I.HoistKey);
}

void Classifier::deadTransfer(const MInstr &I, BitVector &S) const {
  const unsigned NumMarkers = static_cast<unsigned>(Markers.size());
  // Real assignments to V kill V's markers; avail markers for V kill too
  // (at that point actual == expected).
  VarId Killed = InvalidVar;
  if (I.DestVar != InvalidVar && !suppressDeadAssignKill())
    Killed = I.DestVar;
  else if (I.Op == MOp::MAVAIL)
    Killed = I.MarkVar;
  if (Killed != InvalidVar)
    for (unsigned M = 0; M < NumMarkers; ++M)
      if (Markers[M].V == Killed)
        S.reset(M);
  if (I.Op == MOp::MDEAD)
    for (unsigned M = 0; M < NumMarkers; ++M) {
      if (Markers[M].V != I.MarkVar)
        continue;
      if (Markers[M].Inst == &I)
        S.set(M); // This marker supersedes all others of V.
      else
        S.reset(M);
    }
}

const Classifier::AddrState &Classifier::stateAt(std::uint32_t Addr) const {
  // The transfers read the FaultInjector's classifier faults: a test
  // arming/disarming mid-session must see fresh walks, so tag entries
  // with the injector generation and flush when it moves.
  if (Cache.empty()) {
    Cache.resize(MF.numInstrs() + 1);
    CachedFaultGen = FaultInjector::generation();
  } else if (CachedFaultGen != FaultInjector::generation()) {
    Cache.assign(Cache.size(), AddrState());
    CachedFaultGen = FaultInjector::generation();
  }
  if (Addr >= Cache.size())
    Addr = static_cast<std::uint32_t>(Cache.size() - 1);
  AddrState &E = Cache[Addr];
  if (E.Valid) {
    ++CacheStats.Hits;
    return E;
  }
  ++CacheStats.Misses;
  AddrPos P = position(Addr);
  E.Init = InitIn[P.Block];
  E.HoistSome = HoistSomeIn[P.Block];
  E.HoistAll = HoistAllIn[P.Block];
  E.DeadSome = DeadSomeIn[P.Block];
  E.DeadAll = DeadAllIn[P.Block];
  const auto &Insts = MF.Blocks[P.Block].Insts;
  const std::size_t End = P.Index < Insts.size() ? P.Index : Insts.size();
  for (std::size_t Idx = 0; Idx < End; ++Idx) {
    const MInstr &I = Insts[Idx];
    initTransfer(I, E.Init);
    hoistTransfer(I, E.HoistSome);
    hoistTransfer(I, E.HoistAll);
    deadTransfer(I, E.DeadSome);
    deadTransfer(I, E.DeadAll);
  }
  E.Valid = true;
  return E;
}

//===----------------------------------------------------------------------===//
// Classification (Figure 1)
//===----------------------------------------------------------------------===//

Classification Classifier::classifyDegraded(std::uint32_t Addr, VarId V) const {
  // Fail-safe path for variables whose bookkeeping failed verification.
  // Only facts a corrupt annotation cannot skew toward optimism are
  // used: initialization reach (losing a marker only *clears* a def,
  // erring toward Uninitialized) and the storage home's kind.  Hoist and
  // dead reach, residence bits, and recovery are all distrusted, so the
  // verdict is never Current and never Recoverable — memory-resident
  // homes answer Suspect, register homes and the rest Nonresident.
  Classification C;
  C.Degraded = true;
  const VarInfo &VI = Info.var(V);

  if (VI.Storage != StorageKind::Global) {
    auto It = VarIdx.find(V);
    if (It == VarIdx.end() || !stateAt(Addr).Init.test(It->second)) {
      C.Kind = VarClass::Uninitialized;
      return C;
    }
  }

  if (VI.Storage == StorageKind::Global) {
    C.Kind = VarClass::Suspect;
    C.Cause = EndangerCause::MaybeStale;
    return C;
  }
  auto SIt = MF.Storage.find(V);
  if (SIt != MF.Storage.end() && SIt->second.K == VarStorage::Kind::Frame) {
    C.Kind = VarClass::Suspect;
    C.Cause = EndangerCause::MaybeStale;
    return C;
  }
  C.Kind = VarClass::Nonresident;
  return C;
}

Classification Classifier::classify(std::uint32_t Addr, VarId V) const {
  if (DegradeAll || DegradedVars.count(V) != 0)
    return classifyDegraded(Addr, V);

  Classification C;
  const VarInfo &VI = Info.var(V);
  const AddrState &AS = stateAt(Addr);

  // 1. Initialization (locals only; globals assumed initialized).
  if (VI.Storage != StorageKind::Global) {
    auto It = VarIdx.find(V);
    if (It != VarIdx.end()) {
      unsigned Bit = It->second;
      if (!AS.Init.test(Bit)) {
        C.Kind = VarClass::Uninitialized;
        return C;
      }
    } else {
      // The function never touches the variable: it is in scope but was
      // never assigned (or its assignments were all optimized away with
      // no marker, which cannot happen) — uninitialized.
      C.Kind = VarClass::Uninitialized;
      return C;
    }
  }

  // 2. Recovery (paper §2.5): if on *all* paths the expected value of V
  // stems from one eliminated assignment whose right-hand side survives
  // (in a temporary, a variable, or as a constant), the dead reach of V
  // is killed by the surviving expression and V's residence is the
  // expression's storage — the debugger displays the expected value with
  // no further warning ("these two variables are aliased").
  //
  // We therefore evaluate dead-reach-with-recovery before the residence
  // check: recovery supplies residence.
  const unsigned NumMarkers = static_cast<unsigned>(Markers.size());
  bool DeadAll = false, DeadSome = false;
  int DeadAllMarker = -1;
  unsigned DeadAllCount = 0;
  for (unsigned M = 0; M < NumMarkers; ++M) {
    if (Markers[M].V != V)
      continue;
    if (AS.DeadAll.test(M)) {
      DeadAll = true;
      DeadAllMarker = static_cast<int>(M);
      ++DeadAllCount;
    } else if (AS.DeadSome.test(M)) {
      DeadSome = true;
    }
  }
  if (EnableRecovery && DeadAll && DeadAllCount == 1 &&
      Markers[DeadAllMarker].Recovery.K != MRecovery::Kind::None &&
      Addr < RecoveryValid[DeadAllMarker].size() &&
      RecoveryValid[DeadAllMarker].test(Addr)) {
    // Variable-sourced recovery (`c = a` eliminated, recover c from a) is
    // only sound if `a` itself holds its expected value at the marker: if
    // any dead marker or hoisted instance of `a` can reach the marker,
    // the alias would launder an endangered value (the extreme case is a
    // deleted self-copy `v = v`).
    bool SrcSound = true;
    VarId Src = Markers[DeadAllMarker].Recovery.SrcVar;
    if (Src != InvalidVar) {
      std::uint32_t MAddr = Markers[DeadAllMarker].Addr;
      if (Src == V) {
        SrcSound = false; // Self-referential alias: never trustworthy.
      } else {
        // Marker addresses are fixed, so these states come from the same
        // per-address cache as the breakpoint's own.
        const AddrState &MS = stateAt(MAddr);
        for (unsigned M = 0; M < NumMarkers && SrcSound; ++M)
          if (Markers[M].V == Src && MS.DeadSome.test(M))
            SrcSound = false;
        for (unsigned K = 0; K < MF.HoistKeys.size() && SrcSound; ++K)
          if (MF.HoistKeys[K].V == Src && MS.HoistSome.test(K))
            SrcSound = false;
      }
    }
    if (SrcSound) {
      C.Kind = VarClass::Current;
      C.Recoverable = true;
      C.Recovery = Markers[DeadAllMarker].Recovery;
      C.CulpritStmt = Markers[DeadAllMarker].Stmt;
      return C;
    }
  }

  // 3. Residence (the conservative live-range model of [3]).
  bool Resident = true;
  if (VI.Storage == StorageKind::Global) {
    Resident = true;
  } else {
    auto SIt = MF.Storage.find(V);
    if (SIt == MF.Storage.end() || SIt->second.K == VarStorage::Kind::None) {
      Resident = false;
    } else if (SIt->second.K == VarStorage::Kind::InReg) {
      auto RIt = MF.ResidentAt.find(V);
      Resident = RIt != MF.ResidentAt.end() && Addr < RIt->second.size() &&
                 RIt->second.test(Addr);
    }
  }
  if (!Resident) {
    C.Kind = VarClass::Nonresident;
    return C;
  }

  // 4. Hoist reach (Lemmas 2 and 3).
  const unsigned NumKeys = static_cast<unsigned>(MF.HoistKeys.size());
  bool HoistAll = false, HoistSome = false;
  StmtId HoistStmt = InvalidStmt;
  for (unsigned K = 0; K < NumKeys; ++K) {
    if (MF.HoistKeys[K].V != V)
      continue;
    if (AS.HoistAll.test(K)) {
      HoistAll = true;
      HoistStmt = KeyStmt[K];
    } else if (AS.HoistSome.test(K)) {
      HoistSome = true;
      HoistStmt = KeyStmt[K];
    }
  }
  if (HoistAll) {
    C.Kind = VarClass::Noncurrent;
    C.Cause = EndangerCause::Premature;
    C.CulpritStmt = HoistStmt;
    return C;
  }

  // 5. Dead reach without recovery (Lemmas 4 and 5).
  if (DeadAll) {
    C.Kind = VarClass::Noncurrent;
    C.Cause = EndangerCause::Stale;
    C.CulpritStmt = Markers[DeadAllMarker].Stmt;
    return C;
  }

  // 6. Suspect (Lemmas 3 and 6).
  if (HoistSome) {
    C.Kind = VarClass::Suspect;
    C.Cause = EndangerCause::MaybePremature;
    C.CulpritStmt = HoistStmt;
    return C;
  }
  if (DeadSome) {
    C.Kind = VarClass::Suspect;
    C.Cause = EndangerCause::MaybeStale;
    return C;
  }

  C.Kind = VarClass::Current;
  return C;
}

std::string Classifier::warningText(const Classification &C, VarId V) const {
  const std::string &Name = Info.var(V).Name;
  auto StmtRef = [&](StmtId S) {
    return S == InvalidStmt ? std::string("an optimized statement")
                            : "statement " + std::to_string(S);
  };
  if (C.Degraded)
    return "'" + Name + "' is " + varClassName(C.Kind) +
           " (conservative: the debug annotations for this variable "
           "failed integrity verification)";
  switch (C.Kind) {
  case VarClass::Current:
    return "";
  case VarClass::Uninitialized:
    return "'" + Name + "' is uninitialized here";
  case VarClass::Nonresident:
    return "value of '" + Name +
           "' is unavailable (register reused by the allocator)";
  case VarClass::Noncurrent:
    if (C.Cause == EndangerCause::Premature)
      return "'" + Name + "' is noncurrent: the assignment at " +
             StmtRef(C.CulpritStmt) + " has already executed (hoisted)";
    if (C.Recoverable)
      return "'" + Name + "' is noncurrent: the assignment at " +
             StmtRef(C.CulpritStmt) +
             " was eliminated; expected value recovered from a temporary";
    return "'" + Name + "' is noncurrent: the assignment at " +
           StmtRef(C.CulpritStmt) +
           " was eliminated; the displayed value is stale";
  case VarClass::Suspect:
    if (C.Cause == EndangerCause::MaybePremature)
      return "'" + Name + "' is suspect: the assignment at " +
             StmtRef(C.CulpritStmt) +
             " may have executed prematurely on the path taken";
    return "'" + Name +
           "' is suspect: an eliminated assignment may make this value "
           "stale on the path taken";
  }
  return "";
}
