//===- core/DebugInfo.h - DWARF-shaped debug-info export --------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports the debug side-tables of a compiled module in a DWARF-shaped
/// JSON form (`sldbc --debug-info=FILE`): a line table (statement →
/// address), per-variable location lists (register / frame slot /
/// `<optimized-out>` per PC range, the moral equivalent of
/// DW_AT_location + DW_OP_reg / DW_OP_fbreg), and per-variable
/// *availability* ranges — the PC intervals where the classifier of
/// Figure 1 would answer "Current".
///
/// The availability ranges are not recomputed from scratch: they are
/// produced by running the Classifier itself at every instruction
/// address, so the export is consistent with interactive debugging by
/// construction.  Consumers (schema: "sldb-dwarf-0") get half-open
/// [lo, hi) address ranges, strictly monotone and non-overlapping per
/// list, covering [0, num_instrs) for location lists.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_CORE_DEBUGINFO_H
#define SLDB_CORE_DEBUGINFO_H

#include "codegen/MachineIR.h"

#include <string>

namespace sldb {

/// Renders the module's debug information as a JSON document (schema
/// "sldb-dwarf-0").  Deterministic: depends only on the module contents,
/// never on map iteration order or pointer values.
std::string renderDebugInfo(const MachineModule &MM);

/// Writes renderDebugInfo() to \p Path.  Returns false on I/O failure.
bool writeDebugInfoFile(const MachineModule &MM, const std::string &Path);

} // namespace sldb

#endif // SLDB_CORE_DEBUGINFO_H
