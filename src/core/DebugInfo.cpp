//===- core/DebugInfo.cpp - DWARF-shaped debug-info export ------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/DebugInfo.h"

#include "core/Classifier.h"

#include <fstream>
#include <sstream>

using namespace sldb;

namespace {

void jsonEscape(std::ostringstream &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out << "\\\"";
      break;
    case '\\':
      Out << "\\\\";
      break;
    case '\n':
      Out << "\\n";
      break;
    case '\t':
      Out << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out << Buf;
      } else {
        Out << C;
      }
    }
  }
}

const char *typeKindName(TypeKind K) {
  switch (K) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Double:
    return "double";
  case TypeKind::Ptr:
    return "ptr";
  case TypeKind::Void:
    return "void";
  }
  return "?";
}

/// Renders a variable's source type: "int", "double[8]", "int*", ...
std::string renderType(const VarInfo &VI) {
  std::string S;
  if (VI.Ty.Kind == TypeKind::Ptr) {
    S = typeKindName(VI.Ty.Pointee);
    S += "*";
  } else {
    S = typeKindName(VI.Ty.Kind);
  }
  if (!VI.isScalar()) {
    S += "[";
    S += std::to_string(VI.ArraySize);
    S += "]";
  }
  return S;
}

/// Renders the location a variable occupies at one address.  DWARF
/// analogue in the comment on each arm.
std::string locationAt(const MachineFunction &MF, VarId V,
                       std::uint32_t Addr) {
  auto It = MF.Storage.find(V);
  if (It == MF.Storage.end() || It->second.K == VarStorage::Kind::None)
    return "<optimized-out>"; // Empty DW_AT_location.
  const VarStorage &St = It->second;
  switch (St.K) {
  case VarStorage::Kind::InReg: {
    // DW_OP_regN, gated on the live-range residence bits: outside the
    // live range the register holds unrelated recycled values.
    auto RIt = MF.ResidentAt.find(V);
    if (RIt != MF.ResidentAt.end() && Addr < RIt->second.size() &&
        RIt->second.test(Addr))
      return "reg " + St.R.str();
    return "<optimized-out>";
  }
  case VarStorage::Kind::Frame:
    // DW_OP_fbreg <slot> — frame homes are valid for the whole function.
    return "frame+" + std::to_string(St.Frame);
  case VarStorage::Kind::GlobalMem:
    // DW_OP_addr <absolute word address>.
    return "addr+" + std::to_string(St.GlobalAddr);
  case VarStorage::Kind::None:
    break;
  }
  return "<optimized-out>";
}

/// Emits `[{"lo":..,"hi":..,"loc":".."}, ...]` by coalescing a
/// per-address location string into maximal half-open runs.  The runs
/// are monotone, non-overlapping, and cover [0, N) by construction.
void emitLocationList(std::ostringstream &Out, const MachineFunction &MF,
                      VarId V, std::uint32_t N) {
  Out << "[";
  bool FirstRange = true;
  std::uint32_t Lo = 0;
  std::string Cur;
  for (std::uint32_t A = 0; A <= N; ++A) {
    std::string Loc = A < N ? locationAt(MF, V, A) : std::string();
    if (A == 0) {
      Cur = Loc;
      continue;
    }
    if (A < N && Loc == Cur)
      continue;
    if (!FirstRange)
      Out << ",";
    FirstRange = false;
    Out << "{\"lo\":" << Lo << ",\"hi\":" << A << ",\"loc\":\"";
    jsonEscape(Out, Cur);
    Out << "\"}";
    Lo = A;
    Cur = Loc;
  }
  Out << "]";
}

/// Emits availability ranges `[{"lo":..,"hi":..}, ...]`: the maximal
/// half-open address runs where \p Avail is set.
void emitAvailability(std::ostringstream &Out,
                      const std::vector<bool> &Avail) {
  Out << "[";
  bool FirstRange = true;
  std::uint32_t N = static_cast<std::uint32_t>(Avail.size());
  std::uint32_t A = 0;
  while (A < N) {
    if (!Avail[A]) {
      ++A;
      continue;
    }
    std::uint32_t Lo = A;
    while (A < N && Avail[A])
      ++A;
    if (!FirstRange)
      Out << ",";
    FirstRange = false;
    Out << "{\"lo\":" << Lo << ",\"hi\":" << A << "}";
  }
  Out << "]";
}

void emitFunction(std::ostringstream &Out, const MachineModule &MM,
                  const MachineFunction &MF) {
  const ProgramInfo &Info = *MM.Info;
  const FuncInfo &FI = Info.func(MF.Id);
  const std::uint32_t N = MF.numInstrs();

  Out << "{\"name\":\"";
  jsonEscape(Out, MF.Name);
  Out << "\",\"frame_size_words\":" << MF.FrameSize
      << ",\"num_instrs\":" << N << ",\"line_table\":[";

  bool First = true;
  for (StmtId S = 0; S < MF.StmtAddr.size(); ++S) {
    if (MF.StmtAddr[S] < 0)
      continue; // Statement optimized away entirely.
    if (!First)
      Out << ",";
    First = false;
    Out << "{\"stmt\":" << S << ",\"line\":" << FI.Stmts[S].Loc.Line
        << ",\"address\":" << MF.StmtAddr[S] << "}";
  }
  Out << "],\"variables\":[";

  // Availability comes from the classifier itself — the same dataflow
  // over markers and residence bits that answers interactive queries —
  // swept over every address.  classifyAll shares the per-address
  // solution across the function's variables.
  Classifier C(MF, Info);
  First = true;
  std::vector<std::vector<bool>> Avail(FI.Locals.size(),
                                       std::vector<bool>(N, false));
  for (std::uint32_t A = 0; A < N; ++A) {
    std::vector<Classification> Cs = C.classifyAll(A, FI.Locals);
    for (std::size_t I = 0; I < FI.Locals.size(); ++I)
      Avail[I][A] = Cs[I].Kind == VarClass::Current;
  }
  for (std::size_t I = 0; I < FI.Locals.size(); ++I) {
    VarId V = FI.Locals[I];
    const VarInfo &VI = Info.var(V);
    if (!First)
      Out << ",";
    First = false;
    Out << "{\"name\":\"";
    jsonEscape(Out, VI.Name);
    Out << "\",\"type\":\"";
    jsonEscape(Out, renderType(VI));
    Out << "\",\"param\":" << (VI.Storage == StorageKind::Param ? "true"
                                                                : "false");
    Out << ",\"locations\":";
    emitLocationList(Out, MF, V, N);
    Out << ",\"availability\":";
    emitAvailability(Out, Avail[I]);
    Out << "}";
  }
  Out << "]}";
}

} // namespace

std::string sldb::renderDebugInfo(const MachineModule &MM) {
  std::ostringstream Out;
  Out << "{\"schema\":\"sldb-dwarf-0\",\"globals\":[";
  bool First = true;
  for (VarId V : MM.Info->Globals) {
    const VarInfo &VI = MM.Info->var(V);
    auto It = MM.GlobalAddr.find(V);
    if (!First)
      Out << ",";
    First = false;
    Out << "{\"name\":\"";
    jsonEscape(Out, VI.Name);
    Out << "\",\"type\":\"";
    jsonEscape(Out, renderType(VI));
    Out << "\",\"address\":"
        << (It == MM.GlobalAddr.end() ? 0 : It->second) << "}";
  }
  Out << "],\"functions\":[";
  First = true;
  for (const MachineFunction &MF : MM.Funcs) {
    if (!First)
      Out << ",";
    First = false;
    emitFunction(Out, MM, MF);
  }
  Out << "]}\n";
  return Out.str();
}

bool sldb::writeDebugInfoFile(const MachineModule &MM,
                              const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << renderDebugInfo(MM);
  return static_cast<bool>(Out);
}
