//===- support/Arena.cpp --------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <cstdlib>

using namespace sldb;

Arena::Arena(std::size_t FirstSlabBytes)
    : FirstSlabBytes(FirstSlabBytes ? FirstSlabBytes : 4096) {}

Arena::~Arena() {
  for (Slab &S : Slabs)
    ::operator delete(S.Mem, std::align_val_t(alignof(std::max_align_t)));
}

void Arena::grow(std::size_t Bytes) {
  // After reset(), later slabs are still reserved — reuse the next one
  // that fits before asking the OS for more.
  for (std::size_t Next = Slabs.empty() ? 0 : CurSlab + 1;
       Next < Slabs.size(); ++Next) {
    if (Slabs[Next].Size >= Bytes) {
      CurSlab = Next;
      Cur = Slabs[Next].Mem;
      End = Cur + Slabs[Next].Size;
      return;
    }
  }

  std::size_t Size = FirstSlabBytes;
  for (std::size_t I = 0; I < Slabs.size() && Size < MaxSlabBytes; ++I)
    Size *= 2;
  if (Size > MaxSlabBytes)
    Size = MaxSlabBytes;
  if (Size < Bytes)
    Size = Bytes;

  Slab S;
  S.Mem = static_cast<char *>(::operator new(
      Size, std::align_val_t(alignof(std::max_align_t))));
  S.Size = Size;
  Slabs.push_back(S);
  CurSlab = Slabs.size() - 1;
  Cur = S.Mem;
  End = Cur + Size;
}

void *Arena::allocate(std::size_t Bytes, std::size_t Align) {
  if (Bytes == 0)
    Bytes = 1;
  if (Limit && Allocated + Bytes > Limit)
    Exceeded = true; // Soft: serve the request, flag the budget breach.
  std::uintptr_t P = reinterpret_cast<std::uintptr_t>(Cur);
  std::uintptr_t Aligned = (P + Align - 1) & ~(std::uintptr_t(Align) - 1);
  std::size_t Pad = Aligned - P;
  if (!Cur || Bytes + Pad > static_cast<std::size_t>(End - Cur)) {
    // Slabs are max_align_t aligned; over-aligned requests pad as needed.
    grow(Bytes + Align);
    P = reinterpret_cast<std::uintptr_t>(Cur);
    Aligned = (P + Align - 1) & ~(std::uintptr_t(Align) - 1);
    Pad = Aligned - P;
  }
  Cur = reinterpret_cast<char *>(Aligned) + Bytes;
  Allocated += Bytes + Pad;
  return reinterpret_cast<void *>(Aligned);
}

void *Arena::tryAllocate(std::size_t Bytes, std::size_t Align) {
  if (Limit && Allocated + (Bytes ? Bytes : 1) > Limit) {
    Exceeded = true;
    return nullptr;
  }
  return allocate(Bytes, Align);
}

void Arena::reset() {
  Allocated = 0;
  Exceeded = false;
  CurSlab = 0;
  if (Slabs.empty()) {
    Cur = End = nullptr;
    return;
  }
  Cur = Slabs[0].Mem;
  End = Cur + Slabs[0].Size;
}

std::size_t Arena::bytesReserved() const {
  std::size_t N = 0;
  for (const Slab &S : Slabs)
    N += S.Size;
  return N;
}
