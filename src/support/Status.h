//===- support/Status.h - Exception-free error propagation ------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured error propagation for a code base built with
/// `-fno-exceptions`.  A `Status` carries an error code plus a
/// human-readable message; an `Expected<T>` is either a value or a
/// `Status`.  Recoverable failures in the compilation pipeline (malformed
/// IR reaching instruction selection, register-allocation non-convergence,
/// verifier findings) travel through these instead of `assert`/`abort`,
/// so the drivers can turn them into diagnostics and keep serving — the
/// failure-model contract described in DESIGN.md ("Failure model").
///
/// Library code never prints or exits; it returns Status.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_STATUS_H
#define SLDB_SUPPORT_STATUS_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace sldb {

/// Coarse error taxonomy (see DESIGN.md "Failure model").
enum class ErrorCode : std::uint8_t {
  Success = 0,
  /// An internal invariant did not hold (a bug in sldb itself); the
  /// result of the failed step must be discarded, but the process and
  /// other compilations are fine.
  InternalError,
  /// The input IR is structurally invalid for the requested operation.
  InvalidIR,
  /// The IR verifier rejected a pass's output.
  VerifyFailure,
  /// The register allocator failed to converge.
  RegAllocFailure,
  /// A resource budget (fuel, recursion depth, frame space) was exceeded.
  ResourceExhausted,
  /// A service request was malformed or named an unknown entity (module,
  /// function, statement, variable).  The request dies; nothing else.
  InvalidRequest,
  /// A request named a pipeline level this build does not know (a future
  /// or misspelled level name).  Answered before any compilation starts,
  /// so the module registry is untouched — nothing is quarantined over a
  /// bad level name.
  UnknownLevel,
};

const char *errorCodeName(ErrorCode C);

/// An error code plus message.  Default-constructed Status is success.
class Status {
public:
  Status() = default;

  static Status success() { return Status(); }
  static Status error(ErrorCode C, std::string Msg) {
    Status S;
    S.C = C;
    S.Msg = std::move(Msg);
    return S;
  }

  bool ok() const { return C == ErrorCode::Success; }
  ErrorCode code() const { return C; }
  const std::string &message() const { return Msg; }

  /// "error-code: message" (or "ok").
  std::string str() const;

private:
  ErrorCode C = ErrorCode::Success;
  std::string Msg;
};

/// A value or a Status — the exception-free `T`-or-error return type.
template <typename T> class Expected {
public:
  Expected(T Val) : Val(std::move(Val)) {}
  Expected(Status S) : S(std::move(S)) {}

  bool ok() const { return Val.has_value(); }
  explicit operator bool() const { return ok(); }

  T &value() { return *Val; }
  const T &value() const { return *Val; }
  T *operator->() { return &*Val; }
  T &operator*() { return *Val; }

  /// The error; success() when ok().
  const Status &status() const { return S; }

private:
  std::optional<T> Val;
  Status S;
};

} // namespace sldb

#endif // SLDB_SUPPORT_STATUS_H
