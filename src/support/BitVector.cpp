//===- support/BitVector.cpp ----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

using namespace sldb;

void BitVector::grow(unsigned NW) {
  Word *NewW = new Word[NW];
  std::memcpy(NewW, W, NumWords * sizeof(Word));
  destroy();
  W = NewW;
  Cap = NW;
}

void BitVector::resize(unsigned N, bool Value) {
  const unsigned NW = (N + WordBits - 1) / WordBits;
  if (NW > Cap)
    grow(NW);
  // Words beyond the old count get the fill value; existing words keep
  // their contents (matching std::vector::resize semantics).
  const Word Fill = Value ? ~Word(0) : Word(0);
  for (unsigned I = NumWords; I < NW; ++I)
    W[I] = Fill;
  const unsigned OldBits = NumBits;
  NumBits = N;
  NumWords = NW;
  if (Value && N > OldBits && OldBits % WordBits != 0) {
    // The word that held the old tail keeps stale zero bits; set them.
    W[OldBits / WordBits] |= ~Word(0) << (OldBits % WordBits);
  }
  clearUnusedBits();
}
