//===- support/BitVector.cpp ----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include <bit>

using namespace sldb;

void BitVector::resize(unsigned N, bool Value) {
  unsigned OldBits = NumBits;
  NumBits = N;
  Words.resize((N + WordBits - 1) / WordBits, Value ? ~Word(0) : Word(0));
  if (Value && N > OldBits && OldBits % WordBits != 0) {
    // The word that held the old tail keeps stale zero bits; set them.
    unsigned WordIdx = OldBits / WordBits;
    Words[WordIdx] |= ~Word(0) << (OldBits % WordBits);
  }
  clearUnusedBits();
}

void BitVector::set() {
  for (Word &W : Words)
    W = ~Word(0);
  clearUnusedBits();
}

void BitVector::reset() {
  for (Word &W : Words)
    W = 0;
}

bool BitVector::any() const {
  for (Word W : Words)
    if (W != 0)
      return true;
  return false;
}

unsigned BitVector::count() const {
  unsigned N = 0;
  for (Word W : Words)
    N += static_cast<unsigned>(std::popcount(W));
  return N;
}

int BitVector::findFirst() const {
  for (unsigned I = 0, E = static_cast<unsigned>(Words.size()); I != E; ++I)
    if (Words[I] != 0)
      return static_cast<int>(I * WordBits +
                              std::countr_zero(Words[I]));
  return -1;
}

int BitVector::findNext(unsigned From) const {
  unsigned Next = From + 1;
  if (Next >= NumBits)
    return -1;
  unsigned WordIdx = Next / WordBits;
  Word W = Words[WordIdx] & (~Word(0) << (Next % WordBits));
  if (W != 0)
    return static_cast<int>(WordIdx * WordBits + std::countr_zero(W));
  for (unsigned I = WordIdx + 1, E = static_cast<unsigned>(Words.size());
       I != E; ++I)
    if (Words[I] != 0)
      return static_cast<int>(I * WordBits + std::countr_zero(Words[I]));
  return -1;
}

BitVector &BitVector::operator|=(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe mismatch");
  for (unsigned I = 0, E = static_cast<unsigned>(Words.size()); I != E; ++I)
    Words[I] |= RHS.Words[I];
  return *this;
}

BitVector &BitVector::operator&=(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe mismatch");
  for (unsigned I = 0, E = static_cast<unsigned>(Words.size()); I != E; ++I)
    Words[I] &= RHS.Words[I];
  return *this;
}

BitVector &BitVector::subtract(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe mismatch");
  for (unsigned I = 0, E = static_cast<unsigned>(Words.size()); I != E; ++I)
    Words[I] &= ~RHS.Words[I];
  return *this;
}

bool BitVector::anyCommon(const BitVector &RHS) const {
  assert(NumBits == RHS.NumBits && "universe mismatch");
  for (unsigned I = 0, E = static_cast<unsigned>(Words.size()); I != E; ++I)
    if ((Words[I] & RHS.Words[I]) != 0)
      return true;
  return false;
}

bool BitVector::isSubsetOf(const BitVector &RHS) const {
  assert(NumBits == RHS.NumBits && "universe mismatch");
  for (unsigned I = 0, E = static_cast<unsigned>(Words.size()); I != E; ++I)
    if ((Words[I] & ~RHS.Words[I]) != 0)
      return false;
  return true;
}

void BitVector::clearUnusedBits() {
  if (NumBits % WordBits != 0 && !Words.empty())
    Words.back() &= ~Word(0) >> (WordBits - NumBits % WordBits);
}
