//===- support/Sharder.cpp ------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Sharder.h"

using namespace sldb;

ShardRange Sharder::slice(std::size_t Count, unsigned Index, unsigned Of) {
  if (Of == 0)
    Of = 1;
  if (Index >= Of)
    return {Count, Count};
  ShardRange R;
  R.Begin = Count * Index / Of;
  R.End = Count * (Index + 1) / Of;
  return R;
}

bool Sharder::parseSpec(std::string_view Spec, unsigned &Index,
                        unsigned &Of) {
  std::size_t Slash = Spec.find('/');
  if (Slash == std::string_view::npos || Slash == 0 ||
      Slash + 1 >= Spec.size())
    return false;
  auto ParseU = [](std::string_view S, unsigned &Out) {
    if (S.empty() || S.size() > 9)
      return false;
    unsigned V = 0;
    for (char C : S) {
      if (C < '0' || C > '9')
        return false;
      V = V * 10 + static_cast<unsigned>(C - '0');
    }
    Out = V;
    return true;
  };
  unsigned I = 0, K = 0;
  if (!ParseU(Spec.substr(0, Slash), I) ||
      !ParseU(Spec.substr(Slash + 1), K))
    return false;
  if (K == 0 || I >= K)
    return false;
  Index = I;
  Of = K;
  return true;
}
