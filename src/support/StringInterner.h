//===- support/StringInterner.h - String uniquing --------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings (identifiers, variable names) into dense integer
/// symbols so the rest of the compiler can key maps and bit vectors by
/// small indices.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_STRINGINTERNER_H
#define SLDB_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sldb {

/// A dense integer handle for an interned string.
using Symbol = std::uint32_t;

/// Maps strings to dense symbols and back.
class StringInterner {
public:
  /// Interns \p Str, returning a stable symbol; repeated calls with equal
  /// strings return the same symbol.
  Symbol intern(std::string_view Str);

  /// Returns the string for \p Sym.
  const std::string &str(Symbol Sym) const {
    return Strings[Sym];
  }

  /// Number of distinct strings interned so far.
  unsigned size() const { return static_cast<unsigned>(Strings.size()); }

private:
  std::unordered_map<std::string, Symbol> Map;
  std::vector<std::string> Strings;
};

} // namespace sldb

#endif // SLDB_SUPPORT_STRINGINTERNER_H
