//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------*- C++ -*-===//
//
// Part of the sldb project: a reproduction of "Source-Level Debugging of
// Scalar Optimized Code" (Adl-Tabatabai & Gross, PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style.  A class hierarchy opts in by giving
/// every concrete class a `Kind` discriminator and a static `classof(const
/// Base *)` predicate; `isa<>`, `cast<>` and `dyn_cast<>` then work without
/// compiler RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_CASTING_H
#define SLDB_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace sldb {

/// Returns true if \p Val is an instance of type \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(&Val) && "cast<To>() argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(&Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Checking downcast: returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates a null pointer (propagates null).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return isa_and_present<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return isa_and_present<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Marks a point in the program that must never be reached.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace sldb

#define sldb_unreachable(Msg)                                                  \
  ::sldb::unreachableInternal(Msg, __FILE__, __LINE__)

#endif // SLDB_SUPPORT_CASTING_H
