//===- support/FaultInjector.h - Seeded fault injection ---------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of *named* fault-injection points used to test
/// the failure model (DESIGN.md "Failure model").  Generalizes the ad-hoc
/// `ClassifierFaults` booleans of the first fuzzing PR: each point has a
/// stable name (for `sldb-fuzz --inject`), a seeded PRNG for victim
/// selection, and a `Defended` flag:
///
///  * Defended points simulate corrupted debug bookkeeping (a dropped
///    marker, a dangling hoist key, a truncated location table...).  The
///    AnnotationVerifier must detect the damage and the Classifier must
///    degrade to conservative answers — the inject campaign asserts no
///    crash and no unsound CURRENT verdict while one is armed.
///
///  * Undefended points ("teeth" faults) break the classifier's own
///    dataflow; the differential oracle must *catch* the resulting
///    unsoundness.  They prove the fuzzer can see, and are excluded from
///    the inject campaign.
///
/// At most one fault is armed *per thread* at a time; arming is
/// deterministic (seeded), so a failing (seed, fault) pair replays
/// exactly.  Code under test queries `armed(Id)` at its injection site
/// and uses `rand()` to pick victims.  All hooks are zero-cost when
/// nothing is armed beyond a TLS load and an enum compare.
///
/// Thread-ownership rule (parallel campaigns): all armed-fault state —
/// the current fault, the suspended fault, the PRNG stream, and the
/// generation counter — is `thread_local`.  The thread that arms a fault
/// owns it: only that thread sees `armed()` return true, only that
/// thread's `suspend()/resume()` window affects it, and the compile/run
/// work for a (seed, fault) unit must therefore stay on the arming
/// thread from `arm()` to `disarm()`.  A worker building its pristine
/// oracle under `suspend()` can never observe a sibling worker's armed
/// fault, and two workers' victim-selection PRNG streams never
/// interleave.  Handing armed work between threads is not supported.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_FAULTINJECTOR_H
#define SLDB_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <string_view>
#include <vector>

namespace sldb {

/// Every injection point in the system.
enum class FaultId : std::uint8_t {
  None = 0,
  // Teeth faults (undefended; the oracle must catch the unsoundness).
  ClassifierSuppressHoistGen,      ///< Hoist reach loses its gen sets.
  ClassifierSuppressDeadAssignKill,///< Dead reach loses assignment kills.
  // Defended faults (the verifier must detect; classifier must degrade).
  DropDeadMarker,     ///< One MDEAD marker demoted to MNOP after codegen.
  CorruptMarkerVar,   ///< One marker's MarkVar pointed at a bogus id.
  CorruptMarkerStmt,  ///< One marker's MarkStmt pushed out of range.
  CorruptHoistKey,    ///< One hoisted instruction's key made dangling.
  TruncateStmtMap,    ///< StmtAddr location table truncated.
  CorruptRecoveryReg, ///< One InReg recovery retargeted to a bogus reg.
  TruncateResidentAt, ///< One variable's residence bit-vector truncated.
  TrapVMMidRun,       ///< VM traps after a random number of steps.
};

struct FaultPoint {
  FaultId Id;
  const char *Name; ///< Stable CLI name (sldb-fuzz --inject).
  bool Defended;
  const char *Desc;
};

/// Per-thread arm/disarm interface (see the thread-ownership rule in the
/// file comment).  Forked children inherit the forking thread's state.
class FaultInjector {
public:
  /// All registered points, in FaultId order (None excluded).
  static const std::vector<FaultPoint> &points();

  /// Looks a point up by CLI name; null if unknown.
  static const FaultPoint *findPoint(std::string_view Name);

  /// Arms \p Id on the calling thread with a deterministic PRNG stream
  /// derived from \p Seed.  Replaces any fault previously armed here.
  static void arm(FaultId Id, std::uint32_t Seed);

  /// Disarms everything armed on the calling thread.
  static void disarm();

  static bool armed(FaultId Id) { return Cur == Id; }
  static FaultId current() { return Cur; }

  /// Next value of the armed fault's PRNG stream (victim selection).
  static std::uint32_t rand();

  /// Monotonic per-thread counter bumped by every arm/disarm/suspend/
  /// resume; caches keyed on classifier-visible fault state use it as
  /// their tag.  (Classifier instances are thread-confined, so a
  /// per-thread counter tags them correctly.)
  static std::uint64_t generation() { return Gen; }

  /// Temporarily disarms on the calling thread (e.g. while compiling the
  /// oracle build in lockstep, which must stay pristine); resume()
  /// restores.  A suspend window never touches other threads' faults.
  static void suspend();
  static void resume();

private:
  static thread_local FaultId Cur;
  static thread_local FaultId Suspended;
  static thread_local std::uint64_t Gen;
  static thread_local std::uint64_t Rng;
};

} // namespace sldb

#endif // SLDB_SUPPORT_FAULTINJECTOR_H
