//===- support/Trace.h - Structured span/event tracing ----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead structured tracing: RAII spans and instant events land in
/// per-thread buffers and are written out as Chrome trace format JSON
/// (chrome://tracing, Perfetto, speedscope all read it).  The event half
/// of the observability layer; support/Stats.h is the numeric half.
///
/// Cost model, from cold to hot:
///
///  * compiled out — CMake -DSLDB_TRACE=OFF defines SLDB_TRACE_ENABLED 0
///    and every TraceSpan/event call inlines to nothing;
///  * compiled in, disabled (the default at runtime) — one relaxed
///    atomic load per call site, no allocation, no clock read;
///  * enabled — a steady_clock read per span boundary plus an append to
///    the calling thread's own buffer (mutex only on first use per
///    thread and at collection time).
///
/// Tracing is observation only: nothing may branch on it, so turning it
/// on can never change a verdict, a transformed module, or a campaign
/// report (tests/trace_invariance_test.cpp holds the system to this).
///
/// Deterministic capture: campaign workers run each (seed, mode) unit
/// under a TraceCapture, which diverts the calling thread's events into
/// a private buffer with timestamps rebased to the capture start.  The
/// campaign merge then concatenates unit buffers in seed-major order
/// with the unit ordinal as the tid, so the *event sequence* of a merged
/// trace is identical for every --jobs value (timestamps remain wall
/// clock, as in any profile).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_TRACE_H
#define SLDB_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#ifndef SLDB_TRACE_ENABLED
#define SLDB_TRACE_ENABLED 1
#endif

namespace sldb {

/// Appends \p V to \p S as a JSON string literal, quotes included
/// (shared by the trace writer and the explain-mode JSON renderer).
void appendJsonString(std::string &S, const std::string &V);

/// One trace event in Chrome trace format terms: a complete span
/// (Ph == 'X', with duration) or an instant event (Ph == 'i').
struct TraceEvent {
  std::string Name;
  std::string Cat;
  char Ph = 'X';
  std::uint64_t Ts = 0;  ///< Microseconds (process-relative).
  std::uint64_t Dur = 0; ///< Microseconds; spans only.
  std::uint32_t Tid = 0; ///< Filled at collection/merge time.
  std::vector<std::pair<std::string, std::string>> Args;
};

/// The process-wide collector.
class Trace {
public:
  /// Runtime switch; off by default.  enabled() is the one check on
  /// every hot path.
  static void enable() { On.store(true, std::memory_order_relaxed); }
  static void disable() { On.store(false, std::memory_order_relaxed); }
  static bool enabled() {
#if SLDB_TRACE_ENABLED
    return On.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// True when the build compiled tracing in at all.
  static constexpr bool compiledIn() { return SLDB_TRACE_ENABLED != 0; }

  /// Appends one finished event to the calling thread's buffer (or the
  /// active TraceCapture's).  No-op when disabled.
  static void record(TraceEvent E);

  /// Emits an instant event.  No-op when disabled.
  static void instant(std::string Name, std::string Cat,
                      std::vector<std::pair<std::string, std::string>>
                          Args = {});

  /// Microseconds since an arbitrary process-wide origin (steady clock).
  static std::uint64_t nowUs();

  /// Moves every thread's buffered events (collection order: by stable
  /// per-thread id, then append order) out of the collector.
  static std::vector<TraceEvent> take();

  /// Drops all buffered events.
  static void clear() { take(); }

  /// Renders events as a complete Chrome trace JSON document.  Events
  /// are ordered by (tid, ts) so timestamps are monotonic within each
  /// tid, and 'X' spans nest properly per tid (both checked by
  /// tools/check_trace_schema.sh).
  static std::string renderJson(const std::vector<TraceEvent> &Events);

  /// take() + renderJson() + write to \p Path.  Returns false on I/O
  /// failure.  Writes a valid empty document when nothing was recorded.
  static bool writeJsonFile(const std::string &Path);

private:
  friend class TraceCapture;
  static std::atomic<bool> On;
};

/// RAII span: records a 'X' (complete) event covering the scope's
/// lifetime.  Constructed disabled-cheap: when tracing is off (or
/// compiled out) the constructor is a single relaxed load and the
/// destructor a branch.
class TraceSpan {
public:
  TraceSpan(const char *Name, const char *Cat) {
#if SLDB_TRACE_ENABLED
    if (Trace::enabled()) {
      Active = true;
      E.Name = Name;
      E.Cat = Cat;
      E.Ts = Trace::nowUs();
    }
#else
    (void)Name;
    (void)Cat;
#endif
  }

  /// Attaches a key/value argument (shown in the trace viewer).  No-op
  /// when the span is inactive.
  TraceSpan &arg(const char *Key, std::string Value) {
#if SLDB_TRACE_ENABLED
    if (Active)
      E.Args.emplace_back(Key, std::move(Value));
#else
    (void)Key;
    (void)Value;
#endif
    return *this;
  }
  TraceSpan &arg(const char *Key, std::uint64_t Value) {
    return arg(Key, std::to_string(Value));
  }

  ~TraceSpan() {
#if SLDB_TRACE_ENABLED
    if (Active) {
      E.Dur = Trace::nowUs() - E.Ts;
      Trace::record(std::move(E));
    }
#endif
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
#if SLDB_TRACE_ENABLED
  bool Active = false;
  TraceEvent E;
#endif
};

/// Diverts the calling thread's events into a private buffer for the
/// object's lifetime; timestamps are rebased so the capture starts at
/// ts 0.  Captures do not nest (the inner capture asserts) and must be
/// taken on the thread that created them.
class TraceCapture {
public:
  TraceCapture();
  ~TraceCapture();

  /// The captured events, in emission order.  Ends the capture.
  std::vector<TraceEvent> take();

  TraceCapture(const TraceCapture &) = delete;
  TraceCapture &operator=(const TraceCapture &) = delete;

private:
  std::vector<TraceEvent> Buf;
  std::uint64_t Start = 0;
  bool Ended = false;
};

} // namespace sldb

#endif // SLDB_SUPPORT_TRACE_H
