//===- support/ThreadPool.cpp ---------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

using namespace sldb;

unsigned ThreadPool::hardwareJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

namespace {

std::uint64_t nowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One worker's share of the index space.  Task granularity here is a
/// whole compile+run (milliseconds), so a plain mutex per deque is far
/// below the noise floor and keeps the stealing protocol obviously
/// correct: owners pop the front, thieves pop the back, both under the
/// deque's lock.
struct WorkDeque {
  std::mutex M;
  std::deque<std::size_t> Q;
};

} // namespace

std::vector<WorkerStats> ThreadPool::parallelFor(
    std::size_t Count,
    const std::function<void(std::size_t, unsigned)> &Fn) const {
  std::vector<WorkerStats> Stats;

  unsigned N = static_cast<unsigned>(
      std::min<std::size_t>(Jobs, Count ? Count : 1));
  if (N <= 1) {
    // Serial path: identical to the pre-pool campaign loop.
    WorkerStats S;
    S.InitialQueue = static_cast<unsigned>(Count);
    for (std::size_t I = 0; I < Count; ++I) {
      std::uint64_t T0 = nowUs();
      Fn(I, 0);
      std::uint64_t Us = nowUs() - T0;
      ++S.Tasks;
      S.BusyUs += Us;
      if (Us >= S.SlowestUs) {
        S.SlowestUs = Us;
        S.SlowestIndex = I;
      }
    }
    Stats.push_back(S);
    return Stats;
  }

  // Block-distribute [0, Count) so that in the common balanced case a
  // worker streams through a contiguous, cache-friendly seed range and
  // stealing only kicks in at the tail.
  std::vector<WorkDeque> Deques(N);
  Stats.resize(N);
  for (unsigned W = 0; W < N; ++W) {
    std::size_t Lo = Count * W / N, Hi = Count * (W + 1) / N;
    for (std::size_t I = Lo; I < Hi; ++I)
      Deques[W].Q.push_back(I);
    Stats[W].Worker = W;
    Stats[W].InitialQueue = static_cast<unsigned>(Hi - Lo);
  }

  auto Work = [&](unsigned W) {
    WorkerStats &S = Stats[W];
    for (;;) {
      std::size_t Index = 0;
      bool Stolen = false, Found = false;
      {
        std::lock_guard<std::mutex> L(Deques[W].M);
        if (!Deques[W].Q.empty()) {
          Index = Deques[W].Q.front();
          Deques[W].Q.pop_front();
          Found = true;
        }
      }
      if (!Found) {
        // Steal from the back of the first non-empty sibling, scanning
        // round-robin from our right neighbour.
        for (unsigned K = 1; K < N && !Found; ++K) {
          WorkDeque &V = Deques[(W + K) % N];
          std::lock_guard<std::mutex> L(V.M);
          if (!V.Q.empty()) {
            Index = V.Q.back();
            V.Q.pop_back();
            Found = Stolen = true;
          }
        }
      }
      if (!Found)
        return; // Every deque empty: all work claimed.
      std::uint64_t T0 = nowUs();
      Fn(Index, W);
      std::uint64_t Us = nowUs() - T0;
      ++S.Tasks;
      if (Stolen)
        ++S.Steals;
      S.BusyUs += Us;
      if (Us >= S.SlowestUs) {
        S.SlowestUs = Us;
        S.SlowestIndex = Index;
      }
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(N - 1);
  for (unsigned W = 1; W < N; ++W)
    Threads.emplace_back(Work, W);
  Work(0); // The calling thread is worker 0.
  for (std::thread &T : Threads)
    T.join();
  return Stats;
}
