//===- support/StringInterner.cpp -----------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

using namespace sldb;

Symbol StringInterner::intern(std::string_view Str) {
  auto It = Map.find(std::string(Str));
  if (It != Map.end())
    return It->second;
  Symbol Sym = static_cast<Symbol>(Strings.size());
  Strings.emplace_back(Str);
  Map.emplace(Strings.back(), Sym);
  return Sym;
}
