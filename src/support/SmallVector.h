//===- support/SmallVector.h - Inline-storage vector ------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with N elements of inline storage, spilling to the heap only
/// beyond that.  Instruction operand lists are the motivating user: almost
/// every instruction has at most two operands (calls are the exception),
/// so storing them inline removes one heap node per instruction and keeps
/// operands on the same cache lines as the instruction itself.
///
/// Only the std::vector surface the IR uses is provided, and T is required
/// to be trivially copyable + trivially destructible so the storage can be
/// moved with memcpy and abandoned without destructor walks.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_SMALLVECTOR_H
#define SLDB_SUPPORT_SMALLVECTOR_H

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace sldb {

template <typename T, unsigned N> class SmallVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "SmallVector is specialized for POD-like payloads");

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> IL) { assign(IL.begin(), IL.end()); }

  SmallVector(const SmallVector &RHS) { assign(RHS.begin(), RHS.end()); }

  SmallVector(SmallVector &&RHS) noexcept { stealFrom(RHS); }

  SmallVector &operator=(const SmallVector &RHS) {
    if (this != &RHS)
      assign(RHS.begin(), RHS.end());
    return *this;
  }

  SmallVector &operator=(SmallVector &&RHS) noexcept {
    if (this != &RHS) {
      freeHeap();
      stealFrom(RHS);
    }
    return *this;
  }

  SmallVector &operator=(std::initializer_list<T> IL) {
    assign(IL.begin(), IL.end());
    return *this;
  }

  ~SmallVector() { freeHeap(); }

  bool empty() const { return Size == 0; }
  std::uint32_t size() const { return Size; }
  std::uint32_t capacity() const { return Cap; }

  T *data() { return Ptr; }
  const T *data() const { return Ptr; }

  iterator begin() { return Ptr; }
  iterator end() { return Ptr + Size; }
  const_iterator begin() const { return Ptr; }
  const_iterator end() const { return Ptr + Size; }

  T &operator[](std::size_t I) {
    assert(I < Size && "index out of range");
    return Ptr[I];
  }
  const T &operator[](std::size_t I) const {
    assert(I < Size && "index out of range");
    return Ptr[I];
  }

  T &front() { return (*this)[0]; }
  const T &front() const { return (*this)[0]; }
  T &back() { return (*this)[Size - 1]; }
  const T &back() const { return (*this)[Size - 1]; }

  void clear() { Size = 0; }

  void reserve(std::uint32_t NewCap) {
    if (NewCap > Cap)
      growTo(NewCap);
  }

  void push_back(const T &V) {
    if (Size == Cap)
      growTo(Cap * 2);
    Ptr[Size++] = V;
  }

  void pop_back() {
    assert(Size && "pop_back on empty vector");
    --Size;
  }

  void resize(std::uint32_t NewSize, const T &Fill = T()) {
    reserve(NewSize);
    for (std::uint32_t I = Size; I < NewSize; ++I)
      Ptr[I] = Fill;
    Size = NewSize;
  }

  template <typename It> void assign(It First, It Last) {
    Size = 0;
    for (; First != Last; ++First)
      push_back(*First);
  }

  iterator erase(const_iterator Pos) {
    std::size_t Idx = Pos - Ptr;
    assert(Idx < Size && "erase out of range");
    std::memmove(Ptr + Idx, Ptr + Idx + 1, (Size - Idx - 1) * sizeof(T));
    --Size;
    return Ptr + Idx;
  }

  iterator insert(const_iterator Pos, const T &V) {
    std::size_t Idx = Pos - Ptr;
    assert(Idx <= Size && "insert out of range");
    if (Size == Cap)
      growTo(Cap * 2);
    std::memmove(Ptr + Idx + 1, Ptr + Idx, (Size - Idx) * sizeof(T));
    Ptr[Idx] = V;
    ++Size;
    return Ptr + Idx;
  }

  bool operator==(const SmallVector &RHS) const {
    if (Size != RHS.Size)
      return false;
    for (std::uint32_t I = 0; I < Size; ++I)
      if (!(Ptr[I] == RHS.Ptr[I]))
        return false;
    return true;
  }
  bool operator!=(const SmallVector &RHS) const { return !(*this == RHS); }

private:
  bool isInline() const {
    return Ptr == reinterpret_cast<const T *>(Inline);
  }

  void freeHeap() {
    if (!isInline())
      std::free(Ptr);
  }

  void stealFrom(SmallVector &RHS) {
    if (RHS.isInline()) {
      Ptr = reinterpret_cast<T *>(Inline);
      Cap = N;
      Size = RHS.Size;
      std::memcpy(Inline, RHS.Inline, RHS.Size * sizeof(T));
    } else {
      Ptr = RHS.Ptr;
      Cap = RHS.Cap;
      Size = RHS.Size;
      RHS.Ptr = reinterpret_cast<T *>(RHS.Inline);
      RHS.Cap = N;
    }
    RHS.Size = 0;
  }

  void growTo(std::uint32_t NewCap) {
    if (NewCap < Size + 1)
      NewCap = Size + 1;
    T *NewPtr = static_cast<T *>(std::malloc(NewCap * sizeof(T)));
    std::memcpy(NewPtr, Ptr, Size * sizeof(T));
    freeHeap();
    Ptr = NewPtr;
    Cap = NewCap;
  }

  alignas(T) char Inline[N * sizeof(T)];
  T *Ptr = reinterpret_cast<T *>(Inline);
  std::uint32_t Size = 0;
  std::uint32_t Cap = N;
};

} // namespace sldb

#endif // SLDB_SUPPORT_SMALLVECTOR_H
