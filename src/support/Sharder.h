//===- support/Sharder.h - Deterministic index-space sharding ---*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits an index space [0, Count) into K contiguous shards for
/// distributed campaigns (`sldb-fuzz --shard i/k` runs shard i on one
/// machine while siblings run the rest).  Contiguous (not strided)
/// slices keep each shard's report a prefix-ordered sub-range of the
/// whole campaign, so concatenating the K shard reports in shard order
/// reproduces the unsharded report exactly.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_SHARDER_H
#define SLDB_SUPPORT_SHARDER_H

#include <cstddef>
#include <string_view>

namespace sldb {

/// Half-open slice of an index space.
struct ShardRange {
  std::size_t Begin = 0;
  std::size_t End = 0;
  std::size_t size() const { return End - Begin; }
};

class Sharder {
public:
  /// Shard \p Index of \p Of over [0, Count).  Slices are contiguous,
  /// disjoint, cover the space, and differ in size by at most one.
  /// \p Of == 0 is treated as 1; \p Index is clamped into range by the
  /// caller's validation (see parseSpec).
  static ShardRange slice(std::size_t Count, unsigned Index, unsigned Of);

  /// Parses a CLI shard spec "i/k" (0-based index, total k >= 1,
  /// i < k).  Returns false on malformed or out-of-range input.
  static bool parseSpec(std::string_view Spec, unsigned &Index,
                        unsigned &Of);
};

} // namespace sldb

#endif // SLDB_SUPPORT_SHARDER_H
