//===- support/Diagnostics.h - Error reporting -----------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine: the front end and semantic analysis report
/// errors and warnings with source locations; tools render them at the
/// end.  Library code never prints or exits.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_DIAGNOSTICS_H
#define SLDB_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace sldb {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while processing one source file.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: severity: message" lines.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace sldb

#endif // SLDB_SUPPORT_DIAGNOSTICS_H
