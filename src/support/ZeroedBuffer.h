//===- support/ZeroedBuffer.h - Lazily-zeroed flat buffer -------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-size zero-initialized buffer backed by calloc.  A large calloc is
/// served as lazily-mapped zero pages, so constructing a simulator address
/// space costs a mapping, not a multi-megabyte clear — fuzz campaigns
/// build one VM/interpreter per run and touch only a few pages of it.
///
/// T must be trivially copyable with all-zero bytes as its default state.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_ZEROEDBUFFER_H
#define SLDB_SUPPORT_ZEROEDBUFFER_H

#include <cstdlib>
#include <type_traits>

namespace sldb {

template <typename T> class ZeroedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "ZeroedBuffer requires a trivially copyable element");

public:
  explicit ZeroedBuffer(std::size_t N)
      : Ptr(static_cast<T *>(std::calloc(N, sizeof(T)))), N(Ptr ? N : 0) {}
  ZeroedBuffer(const ZeroedBuffer &) = delete;
  ZeroedBuffer &operator=(const ZeroedBuffer &) = delete;
  ~ZeroedBuffer() { std::free(Ptr); }

  T &operator[](std::size_t I) { return Ptr[I]; }
  const T &operator[](std::size_t I) const { return Ptr[I]; }
  std::size_t size() const { return N; }

private:
  T *Ptr;
  std::size_t N;
};

} // namespace sldb

#endif // SLDB_SUPPORT_ZEROEDBUFFER_H
