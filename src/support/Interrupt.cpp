//===- support/Interrupt.cpp ----------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Interrupt.h"

#include <atomic>
#include <csignal>
#include <unistd.h>

using namespace sldb;

namespace {

std::atomic<bool> InterruptFlag{false};
std::atomic<bool> HandlersInstalled{false};

// Async-signal-safe: one store on the first delivery, _exit on the second
// (the graceful drain is wedged; 130 = killed-by-SIGINT convention).
void onSignal(int) {
  if (InterruptFlag.exchange(true, std::memory_order_relaxed))
    ::_exit(130);
}

} // namespace

void sldb::installInterruptHandlers() {
  if (HandlersInstalled.exchange(true, std::memory_order_relaxed))
    return;
  struct sigaction SA = {};
  SA.sa_handler = onSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // No SA_RESTART: wake blocked reads so loops can drain.
  ::sigaction(SIGINT, &SA, nullptr);
  ::sigaction(SIGTERM, &SA, nullptr);
}

bool sldb::interruptRequested() {
  return InterruptFlag.load(std::memory_order_relaxed);
}

void sldb::requestInterrupt() {
  InterruptFlag.store(true, std::memory_order_relaxed);
}

void sldb::clearInterruptForTesting() {
  InterruptFlag.store(false, std::memory_order_relaxed);
}
