//===- support/PodVector.h - Arena-or-heap POD vector -----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector of trivially-copyable elements whose storage can come from an
/// Arena instead of the heap.  Machine-instruction buffers are the user:
/// instruction selection allocates them from the module's arena (growth
/// abandons the old buffer to the arena — cheap, the arena is reset per
/// module), while hand-built MachineFunctions in tests use the default
/// malloc mode and stay self-contained.
///
/// Moves transfer the buffer *and* the allocation mode, so an arena-backed
/// vector can be moved into a malloc-mode container safely.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_PODVECTOR_H
#define SLDB_SUPPORT_PODVECTOR_H

#include "support/Arena.h"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <type_traits>

namespace sldb {

template <typename T> class PodVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "PodVector is specialized for POD-like payloads");

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  PodVector() = default;
  explicit PodVector(Arena *A) : A(A) {}

  PodVector(const PodVector &RHS) : A(RHS.A) {
    assign(RHS.begin(), RHS.end());
  }

  PodVector(PodVector &&RHS) noexcept
      : A(RHS.A), Ptr(RHS.Ptr), Size(RHS.Size), Cap(RHS.Cap) {
    RHS.Ptr = nullptr;
    RHS.Size = RHS.Cap = 0;
  }

  PodVector &operator=(const PodVector &RHS) {
    if (this != &RHS)
      assign(RHS.begin(), RHS.end());
    return *this;
  }

  PodVector &operator=(PodVector &&RHS) noexcept {
    if (this != &RHS) {
      freeBuf();
      A = RHS.A;
      Ptr = RHS.Ptr;
      Size = RHS.Size;
      Cap = RHS.Cap;
      RHS.Ptr = nullptr;
      RHS.Size = RHS.Cap = 0;
    }
    return *this;
  }

  ~PodVector() { freeBuf(); }

  /// Directs future growth to \p NewArena.  Only meaningful before the
  /// first allocation (e.g. right after the block is created).
  void setArena(Arena *NewArena) {
    assert(!Ptr && "setArena after allocation");
    A = NewArena;
  }

  Arena *arena() const { return A; }

  bool empty() const { return Size == 0; }
  std::uint32_t size() const { return Size; }
  std::uint32_t capacity() const { return Cap; }

  T *data() { return Ptr; }
  const T *data() const { return Ptr; }

  iterator begin() { return Ptr; }
  iterator end() { return Ptr + Size; }
  const_iterator begin() const { return Ptr; }
  const_iterator end() const { return Ptr + Size; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  T &operator[](std::size_t I) {
    assert(I < Size && "index out of range");
    return Ptr[I];
  }
  const T &operator[](std::size_t I) const {
    assert(I < Size && "index out of range");
    return Ptr[I];
  }

  T &front() { return (*this)[0]; }
  const T &front() const { return (*this)[0]; }
  T &back() { return (*this)[Size - 1]; }
  const T &back() const { return (*this)[Size - 1]; }

  void clear() { Size = 0; }

  void reserve(std::uint32_t NewCap) {
    if (NewCap > Cap)
      growTo(NewCap);
  }

  void push_back(const T &V) {
    if (Size == Cap)
      growTo(Cap ? Cap * 2 : 8);
    Ptr[Size++] = V;
  }

  void pop_back() {
    assert(Size && "pop_back on empty vector");
    --Size;
  }

  void resize(std::uint32_t NewSize, const T &Fill = T()) {
    reserve(NewSize);
    for (std::uint32_t I = Size; I < NewSize; ++I)
      Ptr[I] = Fill;
    Size = NewSize;
  }

  template <typename It> void assign(It First, It Last) {
    Size = 0;
    for (; First != Last; ++First)
      push_back(*First);
  }

  iterator erase(const_iterator Pos) {
    std::size_t Idx = Pos - Ptr;
    assert(Idx < Size && "erase out of range");
    std::memmove(Ptr + Idx, Ptr + Idx + 1, (Size - Idx - 1) * sizeof(T));
    --Size;
    return Ptr + Idx;
  }

  iterator insert(const_iterator Pos, const T &V) {
    std::size_t Idx = Pos - Ptr;
    assert(Idx <= Size && "insert out of range");
    if (Size == Cap)
      growTo(Cap ? Cap * 2 : 8);
    std::memmove(Ptr + Idx + 1, Ptr + Idx, (Size - Idx) * sizeof(T));
    Ptr[Idx] = V;
    ++Size;
    return Ptr + Idx;
  }

private:
  void freeBuf() {
    // Arena storage is abandoned: the arena reclaims it wholesale.
    if (!A)
      std::free(Ptr);
  }

  void growTo(std::uint32_t NewCap) {
    if (NewCap < Size + 1)
      NewCap = Size + 1;
    T *NewPtr;
    if (A) {
      NewPtr = A->allocate<T>(NewCap);
      if (Size)
        std::memcpy(NewPtr, Ptr, Size * sizeof(T));
    } else {
      NewPtr = static_cast<T *>(std::realloc(Ptr, NewCap * sizeof(T)));
      assert(NewPtr && "out of memory");
    }
    Ptr = NewPtr;
    Cap = NewCap;
  }

  Arena *A = nullptr; ///< Null = malloc mode.
  T *Ptr = nullptr;
  std::uint32_t Size = 0;
  std::uint32_t Cap = 0;
};

} // namespace sldb

#endif // SLDB_SUPPORT_PODVECTOR_H
