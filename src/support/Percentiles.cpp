//===- support/Percentiles.cpp --------------------------------------------===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Percentiles.h"

#include <algorithm>
#include <cassert>

namespace sldb {

std::uint64_t percentileOfSorted(const std::vector<std::uint64_t> &Sorted,
                                 double P) {
  assert(!Sorted.empty() && "percentile of an empty sample set");
  if (P <= 0.0)
    return Sorted.front();
  if (P >= 1.0)
    return Sorted.back();
  std::size_t I = static_cast<std::size_t>(
      P * static_cast<double>(Sorted.size() - 1) + 0.5);
  if (I >= Sorted.size())
    I = Sorted.size() - 1;
  return Sorted[I];
}

std::string latencyReportLine(std::vector<std::uint64_t> SamplesUs) {
  if (SamplesUs.empty())
    return "latency-us n/a (no completed batches)";
  std::sort(SamplesUs.begin(), SamplesUs.end());
  auto U = [](std::uint64_t V) { return std::to_string(V); };
  return "latency-us p50=" + U(percentileOfSorted(SamplesUs, 0.50)) +
         " p90=" + U(percentileOfSorted(SamplesUs, 0.90)) +
         " p99=" + U(percentileOfSorted(SamplesUs, 0.99)) +
         " max=" + U(SamplesUs.back());
}

} // namespace sldb
