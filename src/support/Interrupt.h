//===- support/Interrupt.h - Cooperative SIGINT/SIGTERM flag ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide "please wind down" flag for long-running drivers
/// (fuzz campaigns, the classification daemon).  installInterruptHandlers()
/// routes SIGINT and SIGTERM to an async-signal-safe flag set; work loops
/// poll interruptRequested() at unit boundaries and finish by *flushing*
/// — partial shard reports, reproducer archives, stats — instead of
/// losing the run to the default disposition.
///
/// A second delivery of either signal force-exits (status 130): the
/// escape hatch when the graceful drain itself is wedged.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_INTERRUPT_H
#define SLDB_SUPPORT_INTERRUPT_H

namespace sldb {

/// Installs the SIGINT/SIGTERM handlers (idempotent).
void installInterruptHandlers();

/// True once SIGINT/SIGTERM was delivered (or requestInterrupt() ran).
bool interruptRequested();

/// Sets the flag programmatically — the handler body, also used by tests
/// and by drivers that want to reuse a campaign's drain path.
void requestInterrupt();

/// Clears the flag (tests only; real drivers never un-interrupt).
void clearInterruptForTesting();

} // namespace sldb

#endif // SLDB_SUPPORT_INTERRUPT_H
