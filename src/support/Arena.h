//===- support/Arena.h - Bump-pointer slab allocator ------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena: allocations come from geometrically growing slabs
/// and are never freed individually.  The IR memory model is built on it —
/// every IRFunction, BasicBlock, instruction-pool slab, and machine-code
/// buffer of a module lives in one arena, so a compile touches a handful
/// of contiguous slabs instead of one heap node per instruction.
///
/// Ownership rules (DESIGN.md "IR memory model & batch compilation"):
///
///  * the arena owns *memory*, not *objects* — it never runs destructors.
///    Whoever placement-constructs a non-trivially-destructible object on
///    the arena must destroy it explicitly (IRModule destroys its
///    functions, IRFunction its blocks, InstrPool its instructions);
///  * `reset()` recycles the slabs for reuse without returning them to
///    the OS — the batch compiler's per-module amortization.  Calling it
///    while arena-resident objects are alive is a use-after-reset bug;
///    the owner (IRModule / MachineModule) must already be gone.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_ARENA_H
#define SLDB_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace sldb {

/// Bump-pointer allocator over geometrically growing slabs.
class Arena {
public:
  /// \p FirstSlabBytes is the size of the first slab; subsequent slabs
  /// double up to MaxSlabBytes.  Oversized requests get a dedicated slab.
  explicit Arena(std::size_t FirstSlabBytes = 4096);

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  ~Arena();

  /// Allocates \p Bytes with \p Align alignment (power of two).
  void *allocate(std::size_t Bytes, std::size_t Align);

  /// Allocates uninitialized storage for \p N objects of type T.
  template <typename T> T *allocate(std::size_t N = 1) {
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Placement-constructs a T on the arena.  The caller owns the object
  /// lifetime: the arena will NOT run ~T().
  template <typename T, typename... Args> T *make(Args &&...ArgList) {
    return new (allocate<T>()) T(std::forward<Args>(ArgList)...);
  }

  /// Hard-checked variant of allocate(): returns null (allocating
  /// nothing) when the request would push bytesAllocated() past the
  /// limit.  For callers that can surface the failure directly.
  void *tryAllocate(std::size_t Bytes, std::size_t Align);

  /// Recycles every slab for reuse: subsequent allocations refill the
  /// already-reserved memory.  All objects previously allocated here must
  /// already be destroyed — see the ownership rules above.
  void reset();

  //===--- Memory budget --------------------------------------------------===//
  //
  // The limit is *soft* for allocate(): exceeding it never returns a bad
  // pointer into code built on infallible allocation (`-fno-exceptions`,
  // no null checks at IR construction sites).  Instead the arena goes
  // sticky-exceeded, and budgeted drivers (service loads, `sldbc
  // --batch --arena-limit`) test `limitExceeded()` at phase boundaries
  // and turn it into a structured `ErrorCode::ResourceExhausted` — the
  // request dies, the process does not.  tryAllocate() is the hard
  // variant for callers that can handle null.

  /// Sets the budget in bytes (0 = unlimited).  Applies to bytes handed
  /// out since the last reset(); survives reset().
  void setLimit(std::size_t Bytes) { Limit = Bytes; }
  std::size_t limit() const { return Limit; }

  /// True once any allocation pushed bytesAllocated() past the limit.
  /// Sticky until reset().
  bool limitExceeded() const { return Exceeded; }

  /// Total bytes handed out since construction or the last reset().
  std::size_t bytesAllocated() const { return Allocated; }

  /// Total bytes currently reserved from the OS across all slabs.
  std::size_t bytesReserved() const;

  /// Number of slabs currently reserved.
  std::size_t numSlabs() const { return Slabs.size(); }

private:
  struct Slab {
    char *Mem = nullptr;
    std::size_t Size = 0;
  };

  /// Makes Cur/End point at a slab with at least \p Bytes free.
  void grow(std::size_t Bytes);

  std::vector<Slab> Slabs;
  std::size_t CurSlab = 0; ///< Index of the slab Cur points into.
  char *Cur = nullptr;
  char *End = nullptr;
  std::size_t FirstSlabBytes;
  std::size_t Allocated = 0;
  std::size_t Limit = 0;  ///< 0 = unlimited.
  bool Exceeded = false;  ///< Sticky over-budget flag (see above).

  static constexpr std::size_t MaxSlabBytes = std::size_t(1) << 20;
};

} // namespace sldb

#endif // SLDB_SUPPORT_ARENA_H
