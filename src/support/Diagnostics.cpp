//===- support/Diagnostics.cpp --------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace sldb;

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.Loc.str();
    switch (D.Kind) {
    case DiagKind::Error:
      Out += ": error: ";
      break;
    case DiagKind::Warning:
      Out += ": warning: ";
      break;
    case DiagKind::Note:
      Out += ": note: ";
      break;
    }
    Out += D.Message;
    Out += '\n';
  }
  return Out;
}
