//===- support/Percentiles.h - Latency percentile reporting ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Percentile extraction over a latency sample set, shared by the load
/// driver's report and its unit tests.  The empty set is a first-class
/// input: a stream where every request was shed completes with zero
/// latency samples, and the report must say `n/a` — not a fabricated
/// zero, and certainly not a division by the sample count.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_PERCENTILES_H
#define SLDB_SUPPORT_PERCENTILES_H

#include <cstdint>
#include <string>
#include <vector>

namespace sldb {

/// Nearest-rank percentile of \p Sorted (ascending).  \p P in [0, 1].
/// Must not be called on an empty set — use latencyReportLine, which
/// handles that case.
std::uint64_t percentileOfSorted(const std::vector<std::uint64_t> &Sorted,
                                 double P);

/// Renders the load driver's one-line latency summary from an unsorted
/// sample set:
///
///   latency-us p50=120 p90=340 p99=900 max=1200
///
/// or, when \p SamplesUs is empty (every request shed, nothing ever
/// completed a round trip):
///
///   latency-us n/a (no completed batches)
std::string latencyReportLine(std::vector<std::uint64_t> SamplesUs);

} // namespace sldb

#endif // SLDB_SUPPORT_PERCENTILES_H
