//===- support/Stats.cpp --------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <mutex>

using namespace sldb;

void StatHistogram::record(std::uint64_t Sample) {
  N.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  std::uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (Sample < Cur &&
         !Min.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Max.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
  unsigned B = 0;
  while ((Sample >> B) > 1 && B < NumBuckets - 1)
    ++B;
  Buckets[B].fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Node-based maps: references into them survive later registrations.
struct Registry {
  std::mutex M;
  std::map<std::string, StatCounter> Counters;
  std::map<std::string, StatHistogram> Histograms;
};

Registry &registry() {
  static Registry *R = new Registry; // Intentionally leaked: metrics may
  return *R;                         // be touched during static teardown.
}

} // namespace

StatCounter &Stats::counter(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  assert(!R.Histograms.count(Name) &&
         "stat name already registered as a histogram");
  return R.Counters[Name];
}

StatHistogram &Stats::histogram(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  assert(!R.Counters.count(Name) &&
         "stat name already registered as a counter");
  return R.Histograms[Name];
}

void Stats::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &[Name, C] : R.Counters)
    C.V.store(0, std::memory_order_relaxed);
  for (auto &[Name, H] : R.Histograms) {
    H.N.store(0, std::memory_order_relaxed);
    H.Sum.store(0, std::memory_order_relaxed);
    H.Min.store(~0ull, std::memory_order_relaxed);
    H.Max.store(0, std::memory_order_relaxed);
    for (auto &B : H.Buckets)
      B.store(0, std::memory_order_relaxed);
  }
}

std::vector<StatSnapshot> Stats::snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::vector<StatSnapshot> Out;
  Out.reserve(R.Counters.size() + R.Histograms.size());
  for (const auto &[Name, C] : R.Counters)
    Out.push_back({Name, false, C.value(), 0, 0, 0});
  for (const auto &[Name, H] : R.Histograms)
    Out.push_back({Name, true, H.count(), H.sum(),
                   H.count() ? H.min() : 0, H.max()});
  std::sort(Out.begin(), Out.end(),
            [](const StatSnapshot &A, const StatSnapshot &B) {
              return A.Name < B.Name;
            });
  return Out;
}

std::string Stats::report() {
  std::string S;
  char Buf[256];
  for (const StatSnapshot &E : snapshot()) {
    if (E.Value == 0)
      continue; // Only what actually ran.
    if (E.IsHistogram)
      std::snprintf(Buf, sizeof(Buf),
                    "%-40s n=%llu sum=%llu min=%llu max=%llu mean=%.1f\n",
                    E.Name.c_str(),
                    static_cast<unsigned long long>(E.Value),
                    static_cast<unsigned long long>(E.Sum),
                    static_cast<unsigned long long>(E.Min),
                    static_cast<unsigned long long>(E.Max),
                    E.Value ? static_cast<double>(E.Sum) /
                                  static_cast<double>(E.Value)
                            : 0.0);
    else
      std::snprintf(Buf, sizeof(Buf), "%-40s %llu\n", E.Name.c_str(),
                    static_cast<unsigned long long>(E.Value));
    S += Buf;
  }
  return S;
}
