//===- support/Casting.cpp ------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"

#include <cstdio>
#include <cstdlib>

using namespace sldb;

void sldb::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
