//===- support/ThreadPool.h - Work-stealing parallel-for pool ---*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for embarrassingly parallel index
/// spaces (fuzzing campaigns, eval sweeps).  `parallelFor(Count, Fn)`
/// runs `Fn(Index, Worker)` exactly once for every index in [0, Count):
/// indices are block-distributed across per-worker deques up front;
/// a worker that drains its own deque steals from the back of its
/// siblings' deques until everything is done.
///
/// Determinism contract: the pool guarantees nothing about *order* of
/// execution — callers that need deterministic aggregates must write
/// each index's result into an index-keyed slot and merge the slots in
/// index order after `parallelFor` returns (see fuzz/Campaign.cpp for
/// the pattern).  The callback must confine any thread-sensitive state
/// (e.g. an armed FaultInjector) to its own invocation.
///
/// With `Jobs <= 1` (or a single index) everything runs inline on the
/// calling thread — no threads are spawned, so a `--jobs 1` campaign is
/// byte-for-byte the serial campaign.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_THREADPOOL_H
#define SLDB_SUPPORT_THREADPOOL_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace sldb {

/// Per-worker execution statistics for one `parallelFor`, surfaced by
/// campaign drivers (`sldb-fuzz --jobs`) and the scaling benchmark.
/// Wall-clock fields are inherently nondeterministic; they must never
/// feed a deterministic report.
struct WorkerStats {
  unsigned Worker = 0;       ///< Worker index in [0, jobs).
  unsigned Tasks = 0;        ///< Indices this worker executed.
  unsigned Steals = 0;       ///< Tasks taken from a sibling's deque.
  unsigned InitialQueue = 0; ///< Block-distributed starting queue depth.
  std::uint64_t BusyUs = 0;  ///< Wall time inside callbacks.
  std::uint64_t SlowestUs = 0;              ///< Longest single callback.
  std::size_t SlowestIndex = SIZE_MAX;      ///< Its work index.

  /// Tasks per second while busy (0 when nothing ran).
  double throughput() const {
    return BusyUs ? 1e6 * static_cast<double>(Tasks) / BusyUs : 0.0;
  }
};

class ThreadPool {
public:
  /// \p Jobs worker threads; 0 is clamped to 1.  Use `hardwareJobs()`
  /// for "all cores".
  explicit ThreadPool(unsigned Jobs) : Jobs(Jobs ? Jobs : 1) {}

  unsigned jobs() const { return Jobs; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareJobs();

  /// Runs \p Fn(Index, Worker) once per index in [0, \p Count); blocks
  /// until every index has run.  Returns per-worker stats (one entry per
  /// worker that could have run, i.e. min(Jobs, Count) entries, or one
  /// inline entry for the serial path).
  std::vector<WorkerStats>
  parallelFor(std::size_t Count,
              const std::function<void(std::size_t, unsigned)> &Fn) const;

private:
  unsigned Jobs;
};

} // namespace sldb

#endif // SLDB_SUPPORT_THREADPOOL_H
