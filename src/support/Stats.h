//===- support/Stats.h - Named counters and histograms ----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of *named* metrics — monotonic counters and
/// value histograms — the numeric half of the observability layer (the
/// event half is support/Trace.h).  Producers grab a metric once and
/// bump it lock-free:
///
///   static StatCounter &Hits = Stats::counter("classifier.addr_cache.hit");
///   Hits.add(1);
///
/// Registration interns the name under a mutex; after that every update
/// is a single relaxed atomic add, cheap enough for per-query hot paths.
/// Readers snapshot the registry into a name-sorted report, so output is
/// deterministic regardless of registration or scheduling order.
///
/// Metrics are diagnostic only: nothing in the system may branch on a
/// counter value, so enabling or printing stats can never change a
/// verdict, a report, or a transformed module (the observer-effect
/// property test enforces the same rule for tracing).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_STATS_H
#define SLDB_SUPPORT_STATS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sldb {

/// A monotonic counter.  add() is thread-safe and lock-free.
class StatCounter {
public:
  void add(std::uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  std::uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  friend class Stats;
  std::atomic<std::uint64_t> V{0};
};

/// A value histogram: count / sum / min / max plus power-of-two buckets
/// (bucket i counts samples with floor(log2(value)) == i; value 0 lands
/// in bucket 0).  record() is thread-safe and lock-free.
class StatHistogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void record(std::uint64_t Sample);

  std::uint64_t count() const { return N.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// ~0 when empty.
  std::uint64_t min() const { return Min.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  std::uint64_t bucket(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  double mean() const {
    std::uint64_t C = count();
    return C ? static_cast<double>(sum()) / static_cast<double>(C) : 0.0;
  }

private:
  friend class Stats;
  std::atomic<std::uint64_t> N{0}, Sum{0};
  std::atomic<std::uint64_t> Min{~0ull}, Max{0};
  std::atomic<std::uint64_t> Buckets[NumBuckets] = {};
};

/// One row of a registry snapshot.
struct StatSnapshot {
  std::string Name;
  bool IsHistogram = false;
  std::uint64_t Value = 0; ///< Counter value, or histogram count.
  std::uint64_t Sum = 0, Min = 0, Max = 0; ///< Histograms only.
};

/// The registry.  Metric objects live for the process lifetime; the
/// references handed out never dangle (tests use reset() to zero values
/// in place, which preserves identity).
class Stats {
public:
  /// Interns (or finds) the counter named \p Name.
  static StatCounter &counter(const std::string &Name);

  /// Interns (or finds) the histogram named \p Name.  Counter and
  /// histogram namespaces are disjoint; reusing a name across kinds is a
  /// programming error and asserts.
  static StatHistogram &histogram(const std::string &Name);

  /// Zeroes every registered metric in place (identities survive).
  static void reset();

  /// Name-sorted snapshot of every registered metric.
  static std::vector<StatSnapshot> snapshot();

  /// Human-readable report (one line per metric, name-sorted; metrics
  /// with zero activity are skipped so the report only shows what ran).
  static std::string report();

  /// Convenience for hit-rate style derived values: 100*Num/(Num+Den),
  /// 0 when both are zero.
  static double percent(std::uint64_t Num, std::uint64_t Den) {
    return Num + Den
               ? 100.0 * static_cast<double>(Num) /
                     static_cast<double>(Num + Den)
               : 0.0;
  }
};

} // namespace sldb

#endif // SLDB_SUPPORT_STATS_H
