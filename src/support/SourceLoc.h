//===- support/SourceLoc.h - Source positions ------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column source positions and statement identities.  A *statement id*
/// (StmtId) names a source-level breakpoint location: the paper's analyses
/// are all phrased per source statement ("the value assigned by E2"), so
/// statement ids flow from the front end through optimization annotations
/// down to machine code.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_SOURCELOC_H
#define SLDB_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace sldb {

/// A (line, column) position in the source text; 1-based, 0 = unknown.
struct SourceLoc {
  std::uint32_t Line = 0;
  std::uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(std::uint32_t Line, std::uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const {
    return Line == RHS.Line && Col == RHS.Col;
  }

  /// Renders as "line:col".
  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

/// Identity of a source-level statement (== a potential breakpoint).
/// Dense per function, assigned by the front end in source order.
using StmtId = std::uint32_t;

/// Sentinel for "no statement" (compiler-synthesized code).
inline constexpr StmtId InvalidStmt = ~StmtId(0);

} // namespace sldb

#endif // SLDB_SUPPORT_SOURCELOC_H
