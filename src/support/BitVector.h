//===- support/BitVector.h - Dynamic bit vector ----------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamically sized bit vector with the set operations needed by the
/// iterative bit-vector data-flow framework (union, intersection,
/// difference, comparison).  The paper's analyses (reaching definitions,
/// liveness, availability, hoist reach, dead reach) are all gen/kill
/// problems over these.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_BITVECTOR_H
#define SLDB_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace sldb {

/// Fixed-universe bit set with word-parallel set algebra.
class BitVector {
public:
  BitVector() = default;

  /// Creates a vector of \p N bits, all set to \p Value.
  explicit BitVector(unsigned N, bool Value = false) { resize(N, Value); }

  /// Number of bits in the universe.
  unsigned size() const { return NumBits; }

  bool empty() const { return NumBits == 0; }

  /// Grows or shrinks to \p N bits; new bits get \p Value.
  void resize(unsigned N, bool Value = false);

  /// Tests bit \p Idx.
  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }

  bool operator[](unsigned Idx) const { return test(Idx); }

  /// Sets bit \p Idx.
  void set(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] |= Word(1) << (Idx % WordBits);
  }

  /// Sets all bits.
  void set();

  /// Clears bit \p Idx.
  void reset(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] &= ~(Word(1) << (Idx % WordBits));
  }

  /// Clears all bits.
  void reset();

  /// Flips every bit (complement within the universe).
  void flip() {
    for (Word &W : Words)
      W = ~W;
    clearUnusedBits();
  }

  /// Flips bit \p Idx.
  void flip(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] ^= Word(1) << (Idx % WordBits);
  }

  /// Returns true if any bit is set.
  bool any() const;

  /// Returns true if no bit is set.
  bool none() const { return !any(); }

  /// Returns the number of set bits.
  unsigned count() const;

  /// Returns the index of the first set bit, or -1 if none.
  int findFirst() const;

  /// Returns the index of the first set bit at or after \p From, or -1.
  int findNext(unsigned From) const;

  /// Set union: this |= RHS.  Universes must match.
  BitVector &operator|=(const BitVector &RHS);

  /// Set intersection: this &= RHS.
  BitVector &operator&=(const BitVector &RHS);

  /// Set difference: this -= RHS (clear every bit set in RHS).
  BitVector &subtract(const BitVector &RHS);

  /// Returns true if this and RHS share a set bit.
  bool anyCommon(const BitVector &RHS) const;

  /// Returns true if every set bit of this is also set in RHS.
  bool isSubsetOf(const BitVector &RHS) const;

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }
  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// Iterates over the indices of set bits.
  class SetBitIterator {
  public:
    SetBitIterator(const BitVector &BV, int Idx) : BV(BV), Idx(Idx) {}
    unsigned operator*() const { return static_cast<unsigned>(Idx); }
    SetBitIterator &operator++() {
      Idx = BV.findNext(static_cast<unsigned>(Idx));
      return *this;
    }
    bool operator!=(const SetBitIterator &RHS) const { return Idx != RHS.Idx; }

  private:
    const BitVector &BV;
    int Idx;
  };

  SetBitIterator begin() const { return SetBitIterator(*this, findFirst()); }
  SetBitIterator end() const { return SetBitIterator(*this, -1); }

private:
  using Word = std::uint64_t;
  static constexpr unsigned WordBits = 64;

  /// Zeroes bits beyond NumBits in the last word.
  void clearUnusedBits();

  unsigned NumBits = 0;
  std::vector<Word> Words;
};

} // namespace sldb

#endif // SLDB_SUPPORT_BITVECTOR_H
