//===- support/BitVector.h - Dynamic bit vector ----------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamically sized bit vector with the set operations needed by the
/// iterative bit-vector data-flow framework (union, intersection,
/// difference, comparison).  The paper's analyses (reaching definitions,
/// liveness, availability, hoist reach, dead reach) are all gen/kill
/// problems over these.
///
/// Storage is small-size optimized: universes of up to 128 bits — the
/// overwhelming majority of per-function key/copy/value sets — live in
/// two inline words, so constructing scratch vectors in the dataflow
/// kernels costs no allocation.  Larger universes spill to the heap.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_SUPPORT_BITVECTOR_H
#define SLDB_SUPPORT_BITVECTOR_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>

namespace sldb {

/// Fixed-universe bit set with word-parallel set algebra.
class BitVector {
  using Word = std::uint64_t;
  static constexpr unsigned WordBits = 64;
  static constexpr unsigned NumInline = 2;

public:
  BitVector() = default;

  /// Creates a vector of \p N bits, all set to \p Value.
  explicit BitVector(unsigned N, bool Value = false) { resize(N, Value); }

  BitVector(const BitVector &RHS) { assignFrom(RHS); }

  BitVector(BitVector &&RHS) noexcept { moveFrom(RHS); }

  BitVector &operator=(const BitVector &RHS) {
    if (this != &RHS)
      assignFrom(RHS);
    return *this;
  }

  BitVector &operator=(BitVector &&RHS) noexcept {
    if (this != &RHS) {
      destroy();
      moveFrom(RHS);
    }
    return *this;
  }

  ~BitVector() { destroy(); }

  /// Number of bits in the universe.
  unsigned size() const { return NumBits; }

  bool empty() const { return NumBits == 0; }

  /// Grows or shrinks to \p N bits; new bits get \p Value.
  void resize(unsigned N, bool Value = false);

  /// Tests bit \p Idx.
  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (W[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }

  bool operator[](unsigned Idx) const { return test(Idx); }

  /// Sets bit \p Idx.
  void set(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    W[Idx / WordBits] |= Word(1) << (Idx % WordBits);
  }

  /// Sets all bits.
  void set() {
    for (unsigned I = 0; I < NumWords; ++I)
      W[I] = ~Word(0);
    clearUnusedBits();
  }

  /// Clears bit \p Idx.
  void reset(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    W[Idx / WordBits] &= ~(Word(1) << (Idx % WordBits));
  }

  /// Clears all bits.
  void reset() {
    for (unsigned I = 0; I < NumWords; ++I)
      W[I] = 0;
  }

  /// Flips every bit (complement within the universe).
  void flip() {
    for (unsigned I = 0; I < NumWords; ++I)
      W[I] = ~W[I];
    clearUnusedBits();
  }

  /// Flips bit \p Idx.
  void flip(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    W[Idx / WordBits] ^= Word(1) << (Idx % WordBits);
  }

  /// Returns true if any bit is set.
  bool any() const {
    for (unsigned I = 0; I < NumWords; ++I)
      if (W[I] != 0)
        return true;
    return false;
  }

  /// Returns true if no bit is set.
  bool none() const { return !any(); }

  /// Returns the number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (unsigned I = 0; I < NumWords; ++I)
      N += static_cast<unsigned>(std::popcount(W[I]));
    return N;
  }

  /// Returns the index of the first set bit, or -1 if none.
  int findFirst() const {
    for (unsigned I = 0; I < NumWords; ++I)
      if (W[I] != 0)
        return static_cast<int>(I * WordBits + std::countr_zero(W[I]));
    return -1;
  }

  /// Returns the index of the first set bit at or after \p From, or -1.
  int findNext(unsigned From) const {
    unsigned Next = From + 1;
    if (Next >= NumBits)
      return -1;
    unsigned WordIdx = Next / WordBits;
    Word Masked = W[WordIdx] & (~Word(0) << (Next % WordBits));
    if (Masked != 0)
      return static_cast<int>(WordIdx * WordBits + std::countr_zero(Masked));
    for (unsigned I = WordIdx + 1; I < NumWords; ++I)
      if (W[I] != 0)
        return static_cast<int>(I * WordBits + std::countr_zero(W[I]));
    return -1;
  }

  /// Set union: this |= RHS.  Universes must match.
  BitVector &operator|=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    for (unsigned I = 0; I < NumWords; ++I)
      W[I] |= RHS.W[I];
    return *this;
  }

  /// Set intersection: this &= RHS.
  BitVector &operator&=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    for (unsigned I = 0; I < NumWords; ++I)
      W[I] &= RHS.W[I];
    return *this;
  }

  /// Set difference: this -= RHS (clear every bit set in RHS).
  BitVector &subtract(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    for (unsigned I = 0; I < NumWords; ++I)
      W[I] &= ~RHS.W[I];
    return *this;
  }

  /// Returns true if this and RHS share a set bit.
  bool anyCommon(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    for (unsigned I = 0; I < NumWords; ++I)
      if ((W[I] & RHS.W[I]) != 0)
        return true;
    return false;
  }

  /// Returns true if every set bit of this is also set in RHS.
  bool isSubsetOf(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    for (unsigned I = 0; I < NumWords; ++I)
      if ((W[I] & ~RHS.W[I]) != 0)
        return false;
    return true;
  }

  bool operator==(const BitVector &RHS) const {
    if (NumBits != RHS.NumBits)
      return false;
    // Equal universes imply equal word counts; padding bits are kept
    // clear, so word equality is set equality.
    for (unsigned I = 0; I < NumWords; ++I)
      if (W[I] != RHS.W[I])
        return false;
    return true;
  }
  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// Iterates over the indices of set bits.
  class SetBitIterator {
  public:
    SetBitIterator(const BitVector &BV, int Idx) : BV(BV), Idx(Idx) {}
    unsigned operator*() const { return static_cast<unsigned>(Idx); }
    SetBitIterator &operator++() {
      Idx = BV.findNext(static_cast<unsigned>(Idx));
      return *this;
    }
    bool operator!=(const SetBitIterator &RHS) const { return Idx != RHS.Idx; }

  private:
    const BitVector &BV;
    int Idx;
  };

  SetBitIterator begin() const { return SetBitIterator(*this, findFirst()); }
  SetBitIterator end() const { return SetBitIterator(*this, -1); }

private:
  /// Zeroes bits beyond NumBits in the last word.
  void clearUnusedBits() {
    if (NumBits % WordBits != 0 && NumWords != 0)
      W[NumWords - 1] &= ~Word(0) >> (WordBits - NumBits % WordBits);
  }

  void destroy() {
    if (W != Inline)
      delete[] W;
  }

  /// Copies \p RHS into this, reusing existing storage when it fits.
  void assignFrom(const BitVector &RHS) {
    if (RHS.NumWords > Cap) {
      destroy();
      W = new Word[RHS.NumWords];
      Cap = RHS.NumWords;
    }
    NumWords = RHS.NumWords;
    NumBits = RHS.NumBits;
    std::memcpy(W, RHS.W, NumWords * sizeof(Word));
  }

  /// Steals \p RHS's heap storage, or copies its inline words.
  void moveFrom(BitVector &RHS) noexcept {
    NumBits = RHS.NumBits;
    NumWords = RHS.NumWords;
    if (RHS.W == RHS.Inline) {
      W = Inline;
      Cap = NumInline;
      std::memcpy(Inline, RHS.Inline, sizeof(Inline));
    } else {
      W = RHS.W;
      Cap = RHS.Cap;
      RHS.W = RHS.Inline;
      RHS.Cap = NumInline;
      RHS.NumWords = 0;
      RHS.NumBits = 0;
    }
  }

  /// Reallocates to hold \p NW words, preserving current contents.
  void grow(unsigned NW);

  Word Inline[NumInline] = {0, 0};
  Word *W = Inline;
  unsigned Cap = NumInline;
  unsigned NumWords = 0;
  unsigned NumBits = 0;
};

} // namespace sldb

#endif // SLDB_SUPPORT_BITVECTOR_H
