//===- support/FaultInjector.cpp ------------------------------------------===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

namespace sldb {

thread_local FaultId FaultInjector::Cur = FaultId::None;
thread_local FaultId FaultInjector::Suspended = FaultId::None;
thread_local std::uint64_t FaultInjector::Gen = 0;
thread_local std::uint64_t FaultInjector::Rng = 0;

const std::vector<FaultPoint> &FaultInjector::points() {
  static const std::vector<FaultPoint> Points = {
      {FaultId::ClassifierSuppressHoistGen, "classifier-suppress-hoist-gen",
       /*Defended=*/false,
       "hoist-reach dataflow loses its gen sets (oracle must catch)"},
      {FaultId::ClassifierSuppressDeadAssignKill,
       "classifier-suppress-dead-assign-kill", /*Defended=*/false,
       "dead-reach dataflow loses assignment kills (oracle must catch)"},
      {FaultId::DropDeadMarker, "drop-dead-marker", /*Defended=*/true,
       "one MDEAD marker demoted to MNOP after codegen"},
      {FaultId::CorruptMarkerVar, "corrupt-marker-var", /*Defended=*/true,
       "one marker's MarkVar pointed at a bogus variable id"},
      {FaultId::CorruptMarkerStmt, "corrupt-marker-stmt", /*Defended=*/true,
       "one marker's MarkStmt pushed out of statement range"},
      {FaultId::CorruptHoistKey, "corrupt-hoist-key", /*Defended=*/true,
       "one hoisted instruction's HoistKey made dangling"},
      {FaultId::TruncateStmtMap, "truncate-stmt-map", /*Defended=*/true,
       "the StmtAddr location table truncated to half length"},
      {FaultId::CorruptRecoveryReg, "corrupt-recovery-reg",
       /*Defended=*/true,
       "one InReg recovery fact retargeted to an out-of-range register"},
      {FaultId::TruncateResidentAt, "truncate-resident-at",
       /*Defended=*/true,
       "one variable's residence bit-vector truncated"},
      {FaultId::TrapVMMidRun, "trap-vm-mid-run", /*Defended=*/true,
       "the VM traps after a seed-chosen number of steps"},
  };
  return Points;
}

const FaultPoint *FaultInjector::findPoint(std::string_view Name) {
  for (const FaultPoint &P : points())
    if (Name == P.Name)
      return &P;
  return nullptr;
}

void FaultInjector::arm(FaultId Id, std::uint32_t Seed) {
  Cur = Id;
  Suspended = FaultId::None;
  // splitmix64-style scramble so nearby seeds give unrelated streams.
  Rng = (static_cast<std::uint64_t>(Seed) << 17) ^ 0x9e3779b97f4a7c15ull ^
        (static_cast<std::uint64_t>(Id) << 40);
  ++Gen;
}

void FaultInjector::disarm() {
  Cur = FaultId::None;
  Suspended = FaultId::None;
  ++Gen;
}

std::uint32_t FaultInjector::rand() {
  Rng = Rng * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<std::uint32_t>(Rng >> 33);
}

void FaultInjector::suspend() {
  if (Cur == FaultId::None)
    return;
  Suspended = Cur;
  Cur = FaultId::None;
  ++Gen;
}

void FaultInjector::resume() {
  if (Suspended == FaultId::None)
    return;
  Cur = Suspended;
  Suspended = FaultId::None;
  ++Gen;
}

} // namespace sldb
