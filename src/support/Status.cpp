//===- support/Status.cpp -------------------------------------------------===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

namespace sldb {

const char *errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::Success:
    return "ok";
  case ErrorCode::InternalError:
    return "internal-error";
  case ErrorCode::InvalidIR:
    return "invalid-ir";
  case ErrorCode::VerifyFailure:
    return "verify-failure";
  case ErrorCode::RegAllocFailure:
    return "regalloc-failure";
  case ErrorCode::ResourceExhausted:
    return "resource-exhausted";
  case ErrorCode::InvalidRequest:
    return "invalid-request";
  case ErrorCode::UnknownLevel:
    return "unknown-level";
  }
  return "unknown";
}

std::string Status::str() const {
  if (ok())
    return "ok";
  std::string S = errorCodeName(C);
  if (!Msg.empty()) {
    S += ": ";
    S += Msg;
  }
  return S;
}

} // namespace sldb
