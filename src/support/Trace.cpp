//===- support/Trace.cpp --------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

using namespace sldb;

std::atomic<bool> Trace::On{false};

namespace {

/// One thread's event buffer.  Registered with the collector on first
/// use; never unregistered (buffers outlive their threads so take() can
/// still drain them — thread count is bounded by the pools we create).
struct ThreadBuffer {
  std::uint32_t Tid = 0;
  std::vector<TraceEvent> Events;
};

struct Collector {
  std::mutex M;
  std::vector<ThreadBuffer *> Buffers; ///< In registration (tid) order.
  std::uint32_t NextTid = 1;
};

Collector &collector() {
  static Collector *C = new Collector; // Leaked: threads may trace during
  return *C;                           // static teardown.
}

/// Active capture of the calling thread, if any.
thread_local TraceCapture *ActiveCapture = nullptr;
thread_local std::vector<TraceEvent> *CaptureBuf = nullptr;

ThreadBuffer &myBuffer() {
  thread_local ThreadBuffer *B = [] {
    auto *NB = new ThreadBuffer;
    Collector &C = collector();
    std::lock_guard<std::mutex> Lock(C.M);
    NB->Tid = C.NextTid++;
    C.Buffers.push_back(NB);
    return NB;
  }();
  return *B;
}

} // namespace

std::uint64_t Trace::nowUs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Origin = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            Origin)
          .count());
}

void Trace::record(TraceEvent E) {
  if (!enabled())
    return;
  if (CaptureBuf) {
    CaptureBuf->push_back(std::move(E));
    return;
  }
  ThreadBuffer &B = myBuffer();
  E.Tid = B.Tid;
  B.Events.push_back(std::move(E));
}

void Trace::instant(std::string Name, std::string Cat,
                    std::vector<std::pair<std::string, std::string>> Args) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = std::move(Cat);
  E.Ph = 'i';
  E.Ts = nowUs();
  E.Args = std::move(Args);
  record(std::move(E));
}

std::vector<TraceEvent> Trace::take() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.M);
  std::vector<TraceEvent> Out;
  for (ThreadBuffer *B : C.Buffers) {
    Out.insert(Out.end(), std::make_move_iterator(B->Events.begin()),
               std::make_move_iterator(B->Events.end()));
    B->Events.clear();
  }
  return Out;
}

void sldb::appendJsonString(std::string &S, const std::string &V) {
  S += '"';
  for (char Ch : V) {
    switch (Ch) {
    case '"':
      S += "\\\"";
      break;
    case '\\':
      S += "\\\\";
      break;
    case '\n':
      S += "\\n";
      break;
    case '\t':
      S += "\\t";
      break;
    case '\r':
      S += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(Ch)));
        S += Buf;
      } else {
        S += Ch;
      }
    }
  }
  S += '"';
}

std::string Trace::renderJson(const std::vector<TraceEvent> &Events) {
  // Order by (tid, ts, longer span first, emission index): monotonic
  // timestamps per tid, and — because spans are *recorded* at close
  // (child before parent) — the duration tiebreak puts an enclosing
  // span before the spans it contains when both open in the same
  // microsecond, so 'X' events nest properly in document order
  // (tools/check_trace_schema.sh holds the writer to this).
  std::vector<std::size_t> Order(Events.size());
  for (std::size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(),
                   [&](std::size_t A, std::size_t B) {
                     if (Events[A].Tid != Events[B].Tid)
                       return Events[A].Tid < Events[B].Tid;
                     if (Events[A].Ts != Events[B].Ts)
                       return Events[A].Ts < Events[B].Ts;
                     return Events[A].Dur > Events[B].Dur;
                   });

  std::string S = "{\"traceEvents\":[";
  bool First = true;
  char Buf[96];
  for (std::size_t I : Order) {
    const TraceEvent &E = Events[I];
    if (!First)
      S += ",";
    First = false;
    S += "\n{\"name\":";
    appendJsonString(S, E.Name);
    S += ",\"cat\":";
    appendJsonString(S, E.Cat.empty() ? "sldb" : E.Cat);
    std::snprintf(Buf, sizeof(Buf),
                  ",\"ph\":\"%c\",\"ts\":%llu", E.Ph,
                  static_cast<unsigned long long>(E.Ts));
    S += Buf;
    if (E.Ph == 'X') {
      std::snprintf(Buf, sizeof(Buf), ",\"dur\":%llu",
                    static_cast<unsigned long long>(E.Dur));
      S += Buf;
    }
    if (E.Ph == 'i')
      S += ",\"s\":\"t\"";
    std::snprintf(Buf, sizeof(Buf), ",\"pid\":1,\"tid\":%u",
                  static_cast<unsigned>(E.Tid));
    S += Buf;
    if (!E.Args.empty()) {
      S += ",\"args\":{";
      for (std::size_t A = 0; A < E.Args.size(); ++A) {
        if (A)
          S += ",";
        appendJsonString(S, E.Args[A].first);
        S += ":";
        appendJsonString(S, E.Args[A].second);
      }
      S += "}";
    }
    S += "}";
  }
  S += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return S;
}

bool Trace::writeJsonFile(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << renderJson(take());
  return static_cast<bool>(Out);
}

//===----------------------------------------------------------------------===//
// TraceCapture
//===----------------------------------------------------------------------===//

TraceCapture::TraceCapture() {
  assert(!ActiveCapture && "TraceCapture does not nest");
  Start = Trace::nowUs();
  ActiveCapture = this;
  CaptureBuf = &Buf;
}

std::vector<TraceEvent> TraceCapture::take() {
  assert(ActiveCapture == this &&
         "TraceCapture must be taken on its own thread");
  ActiveCapture = nullptr;
  CaptureBuf = nullptr;
  Ended = true;
  // Rebase: a capture's timeline starts at 0.  Events recorded before
  // enable() flipped mid-capture cannot precede Start, but guard anyway.
  for (TraceEvent &E : Buf)
    E.Ts = E.Ts >= Start ? E.Ts - Start : 0;
  return std::move(Buf);
}

TraceCapture::~TraceCapture() {
  if (!Ended) {
    ActiveCapture = nullptr;
    CaptureBuf = nullptr;
  }
}
