//===- eval/Measure.h - Paper-evaluation measurements -----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement harness behind the paper's evaluation artifacts:
///
///  * Table 2  — program sizes, breakpoints, variables in scope;
///  * Table 3  — code quality (substituted: dynamic instruction count of
///               optimized vs. unoptimized code on the R3K simulator);
///  * Table 4  — percentage of endangered variables that are suspect;
///  * Figure 5 — average number of local variables per breakpoint in each
///               class (uninitialized / current / endangered /
///               nonresident), with and without register allocation.
///
/// Methodology per the paper §4: "counting the number of variables in
/// each category, for each possible breakpoint in the source program, and
/// averaging the results by the number of breakpoints" (static, all
/// breakpoints equally likely).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_EVAL_MEASURE_H
#define SLDB_EVAL_MEASURE_H

#include "eval/Levels.h"
#include "eval/Programs.h"
#include "opt/Pass.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sldb {

/// Table 2 row.
struct SourceStats {
  std::string Name;
  unsigned LinesOfCode = 0;
  unsigned Functions = 0;
  unsigned Breakpoints = 0;
  double BreakpointsPerFunction = 0.0;
  double VarsPerBreakpoint = 0.0; ///< Locals in scope, averaged.
};

SourceStats sourceStats(const BenchProgram &P);

/// Figure 5 / Table 4 row: average number of local variables per
/// breakpoint in each class.  "Current" includes values shown via
/// recovery (the dead reach is killed by the surviving expression,
/// paper §2.5).
struct ClassAverages {
  double Uninitialized = 0.0;
  double Current = 0.0;
  double Recovered = 0.0; ///< Subset of Current shown via recovery (§2.5).
  double Noncurrent = 0.0;
  double Suspect = 0.0;
  double Nonresident = 0.0;
  unsigned Breakpoints = 0;

  double endangered() const { return Noncurrent + Suspect; }
  /// Table 4: share of endangered variables that are suspect (percent).
  double pctSuspectOfEndangered() const {
    double E = endangered();
    return E > 0 ? 100.0 * Suspect / E : 0.0;
  }
};

/// Runs the classifier over every (breakpoint, in-scope local) pair.
/// \p Promote selects the Figure 5(b) (true) or 5(a) (false)
/// configuration.
ClassAverages measureClassification(const BenchProgram &P,
                                    const OptOptions &Opts, bool Promote,
                                    bool EnableRecovery = true);

/// Measures a whole corpus, fanning the per-program measurements across
/// \p Jobs worker threads (0 = all hardware cores).  Results are in
/// corpus order and bit-identical to calling measureClassification
/// serially per program — each program's pipeline, classifier, and
/// averaging run thread-confined on one worker.
std::vector<ClassAverages>
measureClassificationAll(const std::vector<BenchProgram> &Corpus,
                         const OptOptions &Opts, bool Promote,
                         bool EnableRecovery = true, unsigned Jobs = 1);

/// Debuggability coverage at one optimization level: *integer* counts of
/// (breakpoint, in-scope variable) classification points per Figure 1
/// class, summed over a corpus.  The counts (unlike the per-breakpoint
/// averages above) diff exactly, so the rendered report is golden-tested
/// (tests/golden/coverage.txt).
struct CoverageCounts {
  std::string Level;        ///< Level label (eval/Levels.h name table).
  std::uint64_t Points = 0; ///< (breakpoint, variable) pairs classified.
  std::uint64_t Uninitialized = 0;
  std::uint64_t Nonresident = 0;
  std::uint64_t Noncurrent = 0;
  std::uint64_t Suspect = 0;
  std::uint64_t Current = 0;
  std::uint64_t Recovered = 0; ///< Points shown via recovery (paper §2.5).

  /// Quality metrics beyond the Figure-1 class counts: line coverage
  /// (how much of the statement/line table survived optimization) and
  /// the degraded subset (points classified by a classifier that failed
  /// annotation verification — covered conservatively, never
  /// accurately).
  std::uint64_t SrcStmts = 0;  ///< Statement-table rows (source lines).
  std::uint64_t CodeStmts = 0; ///< Rows that kept a code address.
  std::uint64_t Degraded = 0;  ///< Points classified in degraded mode.

  std::uint64_t endangered() const { return Noncurrent + Suspect; }
  /// Share of points the debugger can show truthfully without a warning:
  /// current (including the recovered subset).
  double pctDebuggable() const {
    return Points ? 100.0 * static_cast<double>(Current) /
                        static_cast<double>(Points)
                  : 0.0;
  }
  /// Share of source statements still present in the line table.
  double pctLineCoverage() const {
    return SrcStmts ? 100.0 * static_cast<double>(CodeStmts) /
                          static_cast<double>(SrcStmts)
                    : 0.0;
  }

  /// Sums another row's counts into this one (Level label is kept).
  void add(const CoverageCounts &O) {
    Points += O.Points;
    Uninitialized += O.Uninitialized;
    Nonresident += O.Nonresident;
    Noncurrent += O.Noncurrent;
    Suspect += O.Suspect;
    Current += O.Current;
    Recovered += O.Recovered;
    SrcStmts += O.SrcStmts;
    CodeStmts += O.CodeStmts;
    Degraded += O.Degraded;
  }
};

/// Knobs orthogonal to the level itself.
struct CoverageOptions {
  /// Schedule instructions in codegen.  The cross-level sweep turns this
  /// off so its statically-classified builds are the same builds the
  /// lockstep oracle judges (fuzz/Oracle.cpp compiles with Schedule off).
  bool Schedule = true;

  /// Force every classifier into degraded mode (the annotation-failure
  /// fail-safe): verdicts must stay conservative, so the counts land in
  /// Degraded and never in Current/Recovered.
  bool DegradeAll = false;
};

/// Classifies every (breakpoint, in-scope local) point of the corpus
/// under one level of the pipeline lattice and sums the per-class
/// counts.
CoverageCounts measureCoverage(const std::vector<BenchProgram> &Corpus,
                               const LevelSpec &Level,
                               const CoverageOptions &MO = {});

/// Renders coverage rows as the fixed-width report golden-tested in
/// tests/golden/coverage.txt (one line per optimization level).
std::string renderCoverageReport(const std::vector<CoverageCounts> &Rows);

/// Renders the extended quality-metrics table (line coverage, variable
/// availability, degraded share) for a full level sweep; golden-tested
/// under tests/golden/crosslevel/.
std::string renderLevelReport(const std::vector<CoverageCounts> &Rows);

/// Measured conservatism at one level, from lockstep ground truth: of
/// the warning/refusal verdicts (Noncurrent, Suspect, Nonresident), how
/// many observations had the expected value sitting in the variable's
/// storage home anyway — the verdict was honest but conservative, and a
/// cleverer debugger could have shown the value.
struct ConservatismCounts {
  std::string Level;
  std::uint64_t Noncurrent = 0, NoncurrentMatched = 0;
  std::uint64_t Suspect = 0, SuspectMatched = 0;
  std::uint64_t Nonresident = 0, NonresidentMatched = 0;

  std::uint64_t total() const { return Noncurrent + Suspect + Nonresident; }
  std::uint64_t matched() const {
    return NoncurrentMatched + SuspectMatched + NonresidentMatched;
  }
  /// The conservatism rate: share of conservative verdicts whose value
  /// was actually recoverable per ground truth (percent).
  double rate() const {
    return total() ? 100.0 * static_cast<double>(matched()) /
                         static_cast<double>(total())
                   : 0.0;
  }

  /// Sums another row's counts into this one (Level label is kept).
  void add(const ConservatismCounts &O) {
    Noncurrent += O.Noncurrent;
    NoncurrentMatched += O.NoncurrentMatched;
    Suspect += O.Suspect;
    SuspectMatched += O.SuspectMatched;
    Nonresident += O.Nonresident;
    NonresidentMatched += O.NonresidentMatched;
  }
};

/// Renders conservatism rows as a fixed-width table (one line per
/// level); golden-tested under tests/golden/crosslevel/.
std::string
renderConservatismReport(const std::vector<ConservatismCounts> &Rows);

/// Table 3 substitute: dynamic instruction counts on the R3K simulator.
struct CodeQuality {
  std::uint64_t InstrUnoptimized = 0;
  std::uint64_t InstrOptimized = 0;
  bool OutputsMatch = false;
  double ratio() const {
    return InstrUnoptimized
               ? static_cast<double>(InstrOptimized) / InstrUnoptimized
               : 0.0;
  }
};

/// \p Fuel bounds both simulator runs (Machine step budget); a
/// fuel-exhausted run reports OutputsMatch = false rather than spinning.
CodeQuality measureCodeQuality(const BenchProgram &P,
                               std::uint64_t Fuel = 50'000'000);

} // namespace sldb

#endif // SLDB_EVAL_MEASURE_H
