//===- eval/Levels.h - The pipeline-configuration lattice -------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical table of optimization *levels*: named (OptOptions,
/// PromoteVars) configurations shared by the coverage harness
/// (eval/Measure), the cross-level sweep (eval/CrossLevel), the quality
/// campaigns (fuzz/QualityCampaign), and the sldbc driver.  Levels used
/// to be free-form strings in DebugCoverage reports; the table makes the
/// label, the pass set, and the codegen mode one fact that cannot drift.
///
/// The table is a lattice under moreOptimized(): a level is more
/// optimized than another when it enables a superset of its passes and
/// at least its codegen promotion.  Single-pass levels are mutually
/// incomparable; O2ssa is the top.  (PipelineConfig in opt/Pass.h is the
/// *driver-knob* struct — verification, timing, caching — and is
/// orthogonal to the level table, hence the distinct name.)
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_EVAL_LEVELS_H
#define SLDB_EVAL_LEVELS_H

#include "opt/Pass.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace sldb {

/// Every named pipeline configuration, in canonical report order:
/// unoptimized, one level per single pass, then the combined pipelines.
enum class PipelineLevel : std::uint8_t {
  O0,        ///< No optimization, variables in frame slots.
  ConstProp, ///< One single pass each, frame slots ...
  CopyProp,
  CSE,
  PRE,
  LICM,
  PDE,
  DCE,
  BranchOpt,
  IVOpt,
  LoopPeel,
  LoopUnroll,
  O2nlFrame, ///< All passes minus peel/unroll (lockstep set), frame.
  O2nl,      ///< The lockstep set with register promotion.
  O2Frame,   ///< Everything pre-SSA, frame slots (Figure 5(a)).
  O2,        ///< Everything pre-SSA, promoted (Figure 5(b)).
  Ssa,       ///< SSA construct/destruct round trip alone, frame.
  Gvn,       ///< SSA bracket + global value numbering, frame.
  SparseProp, ///< SSA bracket + sparse copy/const propagation, frame.
  InlineLevel, ///< Leaf inlining alone, frame (static-sweep only).
  O2nlSsa,   ///< Lockstep set + the SSA tier, promoted; judgeable.
  O2Ssa,     ///< Everything including SSA tier and inlining; the top.
};

/// One row of the level table.
struct LevelSpec {
  PipelineLevel Level = PipelineLevel::O0;
  const char *Name = "O0"; ///< Report label ("O0", "pre", "O2-frame", ...).
  OptOptions Opts;         ///< IR pipeline pass selection.
  bool Promote = false;    ///< CodegenOptions::PromoteVars.
};

/// The full table, in canonical order (index == enum value).
const std::vector<LevelSpec> &pipelineLevels();

/// Row lookup by enum.
const LevelSpec &levelSpec(PipelineLevel L);

/// Row lookup by report label; nullptr when unknown.
const LevelSpec *findLevel(std::string_view Name);

/// Strict partial order of the lattice: \p A enables every pass of
/// \p B (and at least one more, or more promotion) and promotes at
/// least as much.  Single-pass levels are mutually incomparable.
bool moreOptimized(const LevelSpec &A, const LevelSpec &B);

/// Whether the lockstep ground-truth oracle can judge the level
/// dynamically: loop peeling/unrolling duplicate statements and
/// inlining splices whole callee bodies under the call statement, both
/// of which break the syntactic stop pairing, so levels enabling any of
/// them are static-sweep only.
bool judgeable(const LevelSpec &S);

} // namespace sldb

#endif // SLDB_EVAL_LEVELS_H
