//===- eval/Programs.cpp - SPEC92 stand-in sources --------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/Programs.h"

using namespace sldb;

namespace {

// li: xlisp interpreter -> list-processing kernel with cons cells kept in
// parallel car/cdr arrays, recursive evaluation, list algebra.
const char *LiSource = R"(
int car[512];
int cdr[512];
int freeCell = 1;

int cons(int a, int d) {
  int c = freeCell;
  freeCell = freeCell + 1;
  car[c] = a;
  cdr[c] = d;
  return c;
}

int makeRange(int lo, int hi) {
  if (lo > hi) return 0;
  return cons(lo, makeRange(lo + 1, hi));
}

int length(int lst) {
  int n = 0;
  while (lst != 0) {
    n = n + 1;
    lst = cdr[lst];
  }
  return n;
}

int sumList(int lst) {
  int s = 0;
  while (lst != 0) {
    s = s + car[lst];
    lst = cdr[lst];
  }
  return s;
}

int reverseList(int lst) {
  int out = 0;
  while (lst != 0) {
    out = cons(car[lst], out);
    lst = cdr[lst];
  }
  return out;
}

int appendLists(int a, int b) {
  if (a == 0) return b;
  return cons(car[a], appendLists(cdr[a], b));
}

int mapScale(int lst, int k) {
  if (lst == 0) return 0;
  return cons(car[lst] * k, mapScale(cdr[lst], k));
}

int filterOdd(int lst) {
  if (lst == 0) return 0;
  int rest = filterOdd(cdr[lst]);
  if (car[lst] % 2 == 1) return cons(car[lst], rest);
  return rest;
}

int nth(int lst, int n) {
  while (n > 0 && lst != 0) {
    lst = cdr[lst];
    n = n - 1;
  }
  if (lst == 0) return -1;
  return car[lst];
}

int main() {
  int status = 0;           // defensive init, always overwritten
  int diag = 0;             // diagnostic cache, read on a cold path only
  int a = makeRange(1, 24);
  status = 1;
  int b = reverseList(a);
  int c = appendLists(a, b);
  status = 2;
  diag = length(b) * 2;     // partially dead: used only if under-full
  int d = mapScale(filterOdd(c), 3);
  int lenA = length(a);
  int lenC = length(c);
  if (lenC < lenA) {        // never true; diagnostic path
    print(diag);
    print(status);
  }
  print(lenA);
  print(lenC);
  print(sumList(a));
  print(sumList(d));
  print(nth(d, 5));
  int total = 0;
  for (int i = 0; i < length(d); i = i + 1) {
    int probe = nth(d, i);  // cached element
    total = total + probe;
  }
  status = 3;
  print(total);
  return 0;
}
)";

// eqntott: boolean equation to truth table conversion -> evaluate a fixed
// boolean function over all assignments of 8 inputs, collect minterms,
// sort them, and summarize.
const char *EqntottSource = R"(
int minterms[256];
int numMinterms = 0;

int bitOf(int word, int pos) { return (word >> pos) & 1; }

int evalFunction(int assign) {
  int a = bitOf(assign, 0);
  int b = bitOf(assign, 1);
  int c = bitOf(assign, 2);
  int d = bitOf(assign, 3);
  int e = bitOf(assign, 4);
  int f = bitOf(assign, 5);
  int g = bitOf(assign, 6);
  int h = bitOf(assign, 7);
  int t1 = (a & b) | (c & (1 - d));
  int t2 = (e | f) & ((g ^ h) | (a & (1 - c)));
  int t3 = (b ^ e) | (d & h);
  return (t1 & t2) | ((1 - t1) & t3 & (1 - g));
}

void collectMinterms() {
  for (int v = 0; v < 256; v = v + 1) {
    if (evalFunction(v)) {
      minterms[numMinterms] = v;
      numMinterms = numMinterms + 1;
    }
  }
}

int popcount(int v) {
  int n = 0;
  while (v != 0) {
    n = n + (v & 1);
    v = v >> 1;
  }
  return n;
}

void sortByWeight() {
  for (int i = 1; i < numMinterms; i = i + 1) {
    int key = minterms[i];
    int kw = popcount(key);
    int j = i - 1;
    while (j >= 0 && (popcount(minterms[j]) > kw ||
           (popcount(minterms[j]) == kw && minterms[j] > key))) {
      minterms[j + 1] = minterms[j];
      j = j - 1;
    }
    minterms[j + 1] = key;
  }
}

int countAdjacentPairs() {
  int pairs = 0;
  for (int i = 0; i < numMinterms; i = i + 1) {
    for (int j = i + 1; j < numMinterms; j = j + 1) {
      int diff = minterms[i] ^ minterms[j];
      if (popcount(diff) == 1) pairs = pairs + 1;
    }
  }
  return pairs;
}

int main() {
  int errors = 0;           // defensive error counter, never incremented
  int lastWeight = -1;      // scratch for the sortedness check
  collectMinterms();
  print(numMinterms);
  sortByWeight();
  int sorted = 1;
  for (int i = 0; i < numMinterms; i = i + 1) {
    int w = popcount(minterms[i]);
    if (w < lastWeight) sorted = 0;
    lastWeight = w;
  }
  if (!sorted) {            // cold diagnostic path
    errors = errors + 1;
    print(errors);
  }
  print(minterms[0]);
  print(minterms[numMinterms - 1]);
  int checksum = 0;
  for (int i = 0; i < numMinterms; i = i + 1) {
    int term = minterms[i]; // cached element, one use
    checksum = (checksum * 31 + term) % 65521;
  }
  print(checksum);
  print(countAdjacentPairs());
  return 0;
}
)";

// espresso: two-level logic minimization -> cube cover operations: cubes
// as (mask, value) bit pairs; containment, distance-1 merging, cover
// reduction passes.
const char *EspressoSource = R"(
int cubeMask[128];
int cubeVal[128];
int cubeLive[128];
int numCubes = 0;

void addCube(int mask, int val) {
  cubeMask[numCubes] = mask;
  cubeVal[numCubes] = val & mask;
  cubeLive[numCubes] = 1;
  numCubes = numCubes + 1;
}

int covers(int i, int j) {
  // Cube i covers cube j if i's care-set is a subset of j's and they
  // agree on i's cared bits.
  if ((cubeMask[i] & cubeMask[j]) != cubeMask[i]) return 0;
  return (cubeVal[j] & cubeMask[i]) == cubeVal[i];
}

int popcount(int v) {
  int n = 0;
  while (v != 0) {
    n = n + (v & 1);
    v = v >> 1;
  }
  return n;
}

int tryMerge(int i, int j) {
  // Merge two cubes that differ in exactly one cared bit value.
  if (cubeMask[i] != cubeMask[j]) return 0;
  int diff = cubeVal[i] ^ cubeVal[j];
  if (popcount(diff) != 1) return 0;
  cubeMask[i] = cubeMask[i] & ~diff;
  cubeVal[i] = cubeVal[i] & cubeMask[i];
  cubeLive[j] = 0;
  return 1;
}

int sweepContained() {
  int removed = 0;
  for (int i = 0; i < numCubes; i = i + 1) {
    if (!cubeLive[i]) continue;
    for (int j = 0; j < numCubes; j = j + 1) {
      if (i == j || !cubeLive[j]) continue;
      if (covers(i, j)) {
        cubeLive[j] = 0;
        removed = removed + 1;
      }
    }
  }
  return removed;
}

int sweepMerge() {
  int merges = 0;
  for (int i = 0; i < numCubes; i = i + 1) {
    if (!cubeLive[i]) continue;
    for (int j = i + 1; j < numCubes; j = j + 1) {
      if (!cubeLive[j]) continue;
      merges = merges + tryMerge(i, j);
    }
  }
  return merges;
}

int liveCount() {
  int n = 0;
  for (int i = 0; i < numCubes; i = i + 1) n = n + cubeLive[i];
  return n;
}

int main() {
  // Seed a cover from a pseudo-random function of 6 variables.
  int seed = 12345;
  int dropped = 0;          // partially dead statistic
  for (int v = 0; v < 64; v = v + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    int keep = (seed >> 7) % 3 != 0;
    if (keep) addCube(63, v);
    else dropped = dropped + 1;
  }
  int before = liveCount();
  print(before);
  int rounds = 0;
  int changed = 1;
  int lastMerges = 0;       // cached per round, read after loop only
  while (changed && rounds < 12) {
    int merges = sweepMerge();
    int contained = sweepContained();
    changed = merges + contained;
    lastMerges = merges;
    rounds = rounds + 1;
  }
  print(rounds);
  int after = liveCount();
  print(after);
  if (after > before) {     // impossible; diagnostic only
    print(lastMerges);
    print(dropped);
  }
  int checksum = 0;
  for (int i = 0; i < numCubes; i = i + 1) {
    int mask = cubeMask[i];
    int val = cubeVal[i];
    if (cubeLive[i])
      checksum = (checksum * 17 + mask * 64 + val) % 99991;
  }
  print(checksum);
  return 0;
}
)";

// gcc: optimizing C compiler -> expression compiler kernel: build random
// expression streams, compile to stack code, constant-fold, peephole,
// and execute both versions.
const char *GccSource = R"(
int code[2048];
int codeLen = 0;

int OPPUSH = 1;
int OPADD = 2;
int OPSUB = 3;
int OPMUL = 4;
int OPNEG = 5;

int rngState = 777;
int nextRand() {
  rngState = (rngState * 1103515245 + 12345) % 2147483647;
  if (rngState < 0) rngState = -rngState;
  return rngState;
}

void emit(int op, int arg) {
  code[codeLen] = op;
  code[codeLen + 1] = arg;
  codeLen = codeLen + 2;
}

// Recursive random expression generator compiled straight to stack code.
void genExpr(int depth) {
  if (depth <= 0 || nextRand() % 4 == 0) {
    emit(OPPUSH, nextRand() % 100 - 50);
    return;
  }
  int kind = nextRand() % 4;
  if (kind == 3) {
    genExpr(depth - 1);
    emit(OPNEG, 0);
    return;
  }
  genExpr(depth - 1);
  genExpr(depth - 1);
  if (kind == 0) emit(OPADD, 0);
  if (kind == 1) emit(OPSUB, 0);
  if (kind == 2) emit(OPMUL, 0);
}

int stack[256];

int execute(int* prog, int len) {
  int sp = 0;
  for (int pc = 0; pc < len; pc = pc + 2) {
    int op = prog[pc];
    int arg = prog[pc + 1];
    if (op == OPPUSH) {
      stack[sp] = arg;
      sp = sp + 1;
    } else if (op == OPNEG) {
      stack[sp - 1] = -stack[sp - 1];
    } else {
      int b = stack[sp - 1];
      int a = stack[sp - 2];
      sp = sp - 1;
      if (op == OPADD) stack[sp - 1] = a + b;
      if (op == OPSUB) stack[sp - 1] = a - b;
      if (op == OPMUL) stack[sp - 1] = a * b;
    }
  }
  return stack[0];
}

int folded[2048];
int foldedLen = 0;

// Peephole constant folding: PUSH a, PUSH b, binop => PUSH (a op b).
void foldConstants() {
  foldedLen = 0;
  for (int pc = 0; pc < codeLen; pc = pc + 2) {
    int op = code[pc];
    int arg = code[pc + 1];
    int canFold = 0;
    if (foldedLen >= 4 && (op == OPADD || op == OPSUB || op == OPMUL)) {
      if (folded[foldedLen - 4] == OPPUSH && folded[foldedLen - 2] == OPPUSH)
        canFold = 1;
    }
    if (canFold) {
      int a = folded[foldedLen - 3];
      int b = folded[foldedLen - 1];
      int r = 0;
      if (op == OPADD) r = a + b;
      if (op == OPSUB) r = a - b;
      if (op == OPMUL) r = a * b;
      foldedLen = foldedLen - 4;
      folded[foldedLen] = OPPUSH;
      folded[foldedLen + 1] = r;
      foldedLen = foldedLen + 2;
    } else if (foldedLen >= 2 && op == OPNEG &&
               folded[foldedLen - 2] == OPPUSH) {
      folded[foldedLen - 1] = -folded[foldedLen - 1];
    } else {
      folded[foldedLen] = op;
      folded[foldedLen + 1] = arg;
      foldedLen = foldedLen + 2;
    }
  }
}

int main() {
  int matched = 0;
  int mismatched = 0;       // defensive counter for the cold path
  int totalBefore = 0;
  int totalAfter = 0;
  int worstGrowth = 0;      // diagnostic, read once after the loop
  for (int round = 0; round < 10; round = round + 1) {
    codeLen = 0;
    genExpr(5);
    foldConstants();
    int a = execute(code, codeLen);
    int b = execute(folded, foldedLen);
    int saved = codeLen - foldedLen;   // cached, used on both paths
    if (a == b) {
      matched = matched + 1;
    } else {
      mismatched = mismatched + 1;
      print(a);
      print(b);
    }
    if (saved < worstGrowth) worstGrowth = saved;
    totalBefore = totalBefore + codeLen;
    totalAfter = totalAfter + foldedLen;
  }
  print(matched);
  print(totalBefore);
  print(totalAfter);
  print(totalBefore - totalAfter);
  if (mismatched > 0) print(worstGrowth);
  return 0;
}
)";

// alvinn: neural network training -> small dense net, forward pass +
// backprop over deterministic synthetic samples (double-heavy code).
const char *AlvinnSource = R"(
double wIn[128];
double wOut[32];
double hidden[8];
double output[4];
double deltaOut[4];
double deltaHid[8];

double rngD = 0.37;
double nextWeight() {
  rngD = rngD * 171.0;
  rngD = rngD - (rngD / 30269.0 - 0.5) * 0.0;
  while (rngD > 1.0) rngD = rngD - 1.0;
  return rngD - 0.5;
}

double activation(double x) {
  // Rational sigmoid-like squashing (no transcendental library).
  double ax = x;
  if (ax < 0.0) ax = -ax;
  return x / (1.0 + ax);
}

void forward(double* input) {
  for (int h = 0; h < 8; h = h + 1) {
    double sum = 0.0;
    for (int i = 0; i < 16; i = i + 1) {
      sum = sum + input[i] * wIn[h * 16 + i];
    }
    hidden[h] = activation(sum);
  }
  for (int o = 0; o < 4; o = o + 1) {
    double sum = 0.0;
    for (int h = 0; h < 8; h = h + 1) {
      sum = sum + hidden[h] * wOut[o * 8 + h];
    }
    output[o] = activation(sum);
  }
}

double train(double* input, double* target, double rate) {
  forward(input);
  double err = 0.0;
  for (int o = 0; o < 4; o = o + 1) {
    double diff = target[o] - output[o];
    err = err + diff * diff;
    deltaOut[o] = diff;
  }
  for (int h = 0; h < 8; h = h + 1) {
    double sum = 0.0;
    for (int o = 0; o < 4; o = o + 1) {
      sum = sum + deltaOut[o] * wOut[o * 8 + h];
    }
    deltaHid[h] = sum;
  }
  for (int o = 0; o < 4; o = o + 1) {
    for (int h = 0; h < 8; h = h + 1) {
      wOut[o * 8 + h] = wOut[o * 8 + h] + rate * deltaOut[o] * hidden[h];
    }
  }
  for (int h = 0; h < 8; h = h + 1) {
    for (int i = 0; i < 16; i = i + 1) {
      wIn[h * 16 + i] = wIn[h * 16 + i] + rate * deltaHid[h] * input[i];
    }
  }
  return err;
}

double sample[16];
double target[4];

void makeSample(int k) {
  for (int i = 0; i < 16; i = i + 1) {
    sample[i] = ((k * 7 + i * 3) % 11) * 0.1 - 0.5;
  }
  for (int o = 0; o < 4; o = o + 1) {
    target[o] = ((k + o) % 2) * 0.8 - 0.4;
  }
}

int main() {
  int divergedAt = -1;      // diagnostic, cold path only
  double prevErr = 0.0;     // cached between epochs
  for (int w = 0; w < 128; w = w + 1) wIn[w] = nextWeight() * 0.3;
  for (int w = 0; w < 32; w = w + 1) wOut[w] = nextWeight() * 0.3;
  double firstErr = 0.0;
  double lastErr = 0.0;
  for (int epoch = 0; epoch < 12; epoch = epoch + 1) {
    double epochErr = 0.0;
    for (int k = 0; k < 8; k = k + 1) {
      makeSample(k);
      double sampleErr = train(sample, target, 0.05);
      epochErr = epochErr + sampleErr;
    }
    if (epoch == 0) firstErr = epochErr;
    if (epoch > 0 && epochErr > prevErr * 4.0 && divergedAt < 0)
      divergedAt = epoch;
    prevErr = epochErr;
    lastErr = epochErr;
  }
  printd(firstErr);
  printd(lastErr);
  print(lastErr < firstErr);
  if (divergedAt >= 0) print(divergedAt);
  return 0;
}
)";

// compress: LZW compression -> dictionary over a synthetic 4-symbol
// corpus, compress, decompress, verify round trip.
const char *CompressSource = R"(
int input[1024];
int inputLen = 0;
int codes[1200];
int numCodes = 0;
int prefix[1200];
int suffix[1200];
int dictSize = 0;
int decoded[2048];
int decodedLen = 0;

void makeInput() {
  int state = 99;
  for (int i = 0; i < 1024; i = i + 1) {
    state = (state * 214013 + 2531011) % 2147483647;
    if (state < 0) state = -state;
    // Skewed 4-symbol alphabet gives LZW something to chew on.
    int r = state % 10;
    int sym = 0;
    if (r > 3) sym = 1;
    if (r > 6) sym = 2;
    if (r > 8) sym = 3;
    input[i] = sym;
    inputLen = inputLen + 1;
  }
}

int findEntry(int pfx, int sym) {
  for (int e = 0; e < dictSize; e = e + 1) {
    if (prefix[e] == pfx && suffix[e] == sym) return e;
  }
  return -1;
}

void compress() {
  dictSize = 4;
  for (int s = 0; s < 4; s = s + 1) {
    prefix[s] = -1;
    suffix[s] = s;
  }
  int cur = input[0];
  for (int i = 1; i < inputLen; i = i + 1) {
    int sym = input[i];
    int e = findEntry(cur, sym);
    if (e >= 0) {
      cur = e;
    } else {
      codes[numCodes] = cur;
      numCodes = numCodes + 1;
      if (dictSize < 1200) {
        prefix[dictSize] = cur;
        suffix[dictSize] = sym;
        dictSize = dictSize + 1;
      }
      cur = sym;
    }
  }
  codes[numCodes] = cur;
  numCodes = numCodes + 1;
}

int expandBuf[64];

void expand(int code) {
  int n = 0;
  while (code >= 0) {
    expandBuf[n] = suffix[code];
    n = n + 1;
    code = prefix[code];
  }
  while (n > 0) {
    n = n - 1;
    decoded[decodedLen] = expandBuf[n];
    decodedLen = decodedLen + 1;
  }
}

void decompress() {
  for (int i = 0; i < numCodes; i = i + 1) {
    expand(codes[i]);
  }
}

int main() {
  int firstBad = -1;        // diagnostic index, cold path
  int savings = 0;          // defensive init, recomputed below
  makeInput();
  compress();
  print(inputLen);
  print(numCodes);
  print(dictSize);
  decompress();
  print(decodedLen);
  savings = inputLen - numCodes;
  int ok = decodedLen == inputLen;
  for (int i = 0; i < inputLen && ok; i = i + 1) {
    int want = input[i];    // cached pair
    int got = decoded[i];
    if (got != want) {
      ok = 0;
      firstBad = i;
    }
  }
  print(ok);
  if (!ok) {                // never taken when round trip works
    print(firstBad);
    print(savings);
  }
  print(savings > 0);
  return 0;
}
)";

// ear: human ear model (cochlear filter bank) -> bank of second-order
// resonators driven by a recurrence oscillator, energy per channel.
const char *EarSource = R"(
double energy[8];
double y1s[8];
double y2s[8];

double coefTable(int ch) {
  // Resonator feedback coefficient per channel (2*cos(theta) stand-ins).
  if (ch == 0) return 1.95;
  if (ch == 1) return 1.90;
  if (ch == 2) return 1.80;
  if (ch == 3) return 1.65;
  if (ch == 4) return 1.45;
  if (ch == 5) return 1.20;
  if (ch == 6) return 0.90;
  return 0.55;
}

int main() {
  // Signal: two-tone oscillator via the same recurrence trick.
  double s1a = 0.0;
  double s1b = 0.31;
  double s2a = 0.0;
  double s2b = 0.11;
  double damp = 0.995;
  for (int ch = 0; ch < 8; ch = ch + 1) {
    energy[ch] = 0.0;
    y1s[ch] = 0.0;
    y2s[ch] = 0.0;
  }
  for (int n = 0; n < 2000; n = n + 1) {
    double t1 = 1.93 * s1b - s1a;
    s1a = s1b;
    s1b = t1;
    double t2 = 1.41 * s2b - s2a;
    s2a = s2b;
    s2b = t2;
    double x = s1b * 0.6 + s2b * 0.4;
    for (int ch = 0; ch < 8; ch = ch + 1) {
      double c = coefTable(ch);
      double y = x + damp * (c * y1s[ch] - damp * y2s[ch]);
      y2s[ch] = y1s[ch];
      y1s[ch] = y;
      double e = y * y;
      energy[ch] = energy[ch] * 0.999 + e * 0.001;
    }
  }
  int best = 0;
  int runnerUp = 0;         // computed alongside, read on one path only
  for (int ch = 1; ch < 8; ch = ch + 1) {
    if (energy[ch] > energy[best]) {
      runnerUp = best;
      best = ch;
    }
  }
  print(best);
  printd(energy[best]);
  double total = 0.0;
  for (int ch = 0; ch < 8; ch = ch + 1) {
    double e = energy[ch];  // cached element
    total = total + e;
  }
  print(total > 0.0);
  if (total < 0.0) {        // impossible; diagnostic only
    print(runnerUp);
  }
  return 0;
}
)";

// sc: spreadsheet calculator -> 8x8 grid with formula cells (constants,
// row sums, scaled references), iterative recalculation to a fixpoint.
const char *ScSource = R"(
int kind[64];
int arg1[64];
int arg2[64];
int value[64];
int KCONST = 0;
int KSUMROW = 1;
int KREF2X = 2;
int KDIFF = 3;

int cellAt(int r, int c) { return r * 8 + c; }

void buildSheet() {
  for (int c = 0; c < 8; c = c + 1) {
    kind[cellAt(0, c)] = KCONST;
    arg1[cellAt(0, c)] = (c + 1) * (c + 2);
  }
  for (int r = 1; r < 8; r = r + 1) {
    for (int c = 0; c < 8; c = c + 1) {
      int id = cellAt(r, c);
      int which = (r * 3 + c) % 4;
      if (which == 0) {
        kind[id] = KCONST;
        arg1[id] = r * 10 + c;
      } else if (which == 1) {
        kind[id] = KSUMROW;
        arg1[id] = r - 1;
      } else if (which == 2) {
        kind[id] = KREF2X;
        arg1[id] = cellAt(r - 1, c);
      } else {
        kind[id] = KDIFF;
        arg1[id] = cellAt(r - 1, c);
        arg2[id] = cellAt(r - 1, (c + 1) % 8);
      }
    }
  }
}

int evalCell(int id) {
  int k = kind[id];
  if (k == KCONST) return arg1[id];
  if (k == KSUMROW) {
    int s = 0;
    for (int c = 0; c < 8; c = c + 1) s = s + value[cellAt(arg1[id], c)];
    return s;
  }
  if (k == KREF2X) return value[arg1[id]] * 2;
  return value[arg1[id]] - value[arg2[id]];
}

int recalc() {
  int passes = 0;
  int changed = 1;
  while (changed && passes < 20) {
    changed = 0;
    for (int id = 0; id < 64; id = id + 1) {
      int nv = evalCell(id);
      if (nv != value[id]) {
        value[id] = nv;
        changed = 1;
      }
    }
    passes = passes + 1;
  }
  return passes;
}

int main() {
  int dirty = 1;            // defensive init, overwritten before use
  int audited = 0;          // cold-path statistic
  buildSheet();
  for (int id = 0; id < 64; id = id + 1) value[id] = 0;
  int passes = recalc();
  dirty = 0;
  print(passes);
  print(value[cellAt(7, 0)]);
  print(value[cellAt(7, 7)]);
  int checksum = 0;
  for (int id = 0; id < 64; id = id + 1) {
    int v = value[id];      // cached cell value
    checksum = (checksum * 13 + v) % 1000003;
    if (checksum < 0) checksum = checksum + 1000003;
    audited = audited + 1;
  }
  print(checksum);
  if (passes > 19) {        // non-convergence diagnostic, cold
    print(dirty);
    print(audited);
  }
  // Edit a cell and recalculate incrementally.
  arg1[cellAt(0, 3)] = 99;
  dirty = 1;
  int passes2 = recalc();
  if (dirty) print(passes2);
  print(value[cellAt(7, 7)]);
  return 0;
}
)";

} // namespace

const std::vector<BenchProgram> &sldb::benchmarkPrograms() {
  static const std::vector<BenchProgram> Programs = {
      {"li", "list-interpreter kernel: cons cells, recursive list algebra",
       LiSource},
      {"eqntott", "truth-table construction, minterm sort, adjacency count",
       EqntottSource},
      {"espresso", "cube-cover logic minimization sweeps", EspressoSource},
      {"gcc", "expression-compiler kernel: codegen + constant folding",
       GccSource},
      {"alvinn", "dense neural network forward/backprop (double-heavy)",
       AlvinnSource},
      {"compress", "LZW compress + decompress round trip", CompressSource},
      {"ear", "cochlear filter bank over synthetic two-tone signal",
       EarSource},
      {"sc", "spreadsheet grid with iterative recalculation", ScSource}};
  return Programs;
}
