//===- eval/Programs.h - SPEC92 stand-in benchmark programs -----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight MiniC benchmark programs standing in for the SPEC92 C
/// programs of the paper's evaluation (Table 2).  The originals are
/// proprietary; these are written to match each program's *character*
/// (data structures, loop shapes, arithmetic mix) at a laptop-friendly
/// scale.  DESIGN.md documents the substitution.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_EVAL_PROGRAMS_H
#define SLDB_EVAL_PROGRAMS_H

#include <string>
#include <vector>

namespace sldb {

/// One benchmark program.
struct BenchProgram {
  const char *Name;        ///< SPEC92 name it stands in for.
  const char *Description; ///< What the stand-in computes.
  const char *Source;      ///< MiniC source text.
};

/// Returns the eight programs in the paper's Table 2 order:
/// li, eqntott, espresso, gcc, alvinn, compress, ear, sc.
const std::vector<BenchProgram> &benchmarkPrograms();

} // namespace sldb

#endif // SLDB_EVAL_PROGRAMS_H
