//===- eval/CrossLevel.cpp ------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/CrossLevel.h"

#include "codegen/ISel.h"
#include "ir/IRGen.h"

#include <map>
#include <optional>
#include <tuple>

using namespace sldb;

std::string AvailRegression::str() const {
  std::string S = Program.empty() ? std::string() : Program + ": ";
  S += FuncName + ":s" + std::to_string(Stmt) + " line " +
       std::to_string(Line) + " var '" + VarName + "': " +
       levelSpec(Less).Name + "=" + varClassName(LessKind) + " vs " +
       levelSpec(More).Name + "=" + varClassName(MoreKind);
  if (MoreRecovered)
    S += "+recovered";
  return S;
}

namespace {

/// One classified point at one level.
struct PointVerdict {
  VarClass Kind = VarClass::Current;
  bool Recoverable = false;
};

using PointKey = std::tuple<FuncId, StmtId, VarId>;

/// The debugger can show a truthful value without refusing: Current, or
/// any verdict carrying a §2.5 recovery.
bool available(const PointVerdict &V) {
  return V.Kind == VarClass::Current || V.Recoverable;
}

/// The debugger warns the value may be stale (Suspect) or refuses
/// entirely (Nonresident).  Noncurrent is excluded deliberately: it
/// comes with a definite it-is-stale explanation, so a heavier level
/// showing the (sound) value is expected, not an anomaly.
bool refused(const PointVerdict &V) {
  return V.Kind == VarClass::Suspect || V.Kind == VarClass::Nonresident;
}

/// Classifies one compiled build and records both the coverage counts
/// and the per-point verdict matrix column.  Returns false (with \p Err
/// set) when the build fails.
bool classifyLevel(std::string_view Src, const LevelSpec &Spec,
                   CoverageCounts &CC,
                   std::map<PointKey, PointVerdict> &Column,
                   std::map<PointKey, unsigned> &Lines, std::string &Err) {
  DiagnosticEngine Diags;
  auto M = compileToIR(Src, Diags);
  if (!M) {
    Err = Diags.hasErrors() ? Diags.str() : "frontend error";
    return false;
  }
  Status PS = runPipelineEx(*M, Spec.Opts, PipelineConfig());
  if (!PS.ok()) {
    Err = std::string(Spec.Name) + ": " + PS.str();
    return false;
  }
  CodegenOptions CG;
  CG.PromoteVars = Spec.Promote;
  CG.Schedule = false; // Match the lockstep oracle's builds.
  Expected<MachineModule> MME = compileToMachineE(*M, CG);
  if (!MME) {
    Err = std::string(Spec.Name) + ": " + MME.status().str();
    return false;
  }
  MachineModule &MM = *MME;

  CC.Level = Spec.Name;
  for (const MachineFunction &MF : MM.Funcs) {
    Classifier C(MF, *MM.Info);
    const FuncInfo &FI = MM.Info->func(MF.Id);
    CC.SrcStmts += MF.StmtAddr.size();
    for (StmtId S = 0; S < MF.StmtAddr.size(); ++S) {
      if (MF.StmtAddr[S] < 0)
        continue;
      ++CC.CodeStmts;
      std::uint32_t Addr = static_cast<std::uint32_t>(MF.StmtAddr[S]);
      for (VarId V : FI.Stmts[S].ScopeVars) {
        Classification R = C.classify(Addr, V);
        ++CC.Points;
        switch (R.Kind) {
        case VarClass::Uninitialized:
          ++CC.Uninitialized;
          break;
        case VarClass::Nonresident:
          ++CC.Nonresident;
          break;
        case VarClass::Noncurrent:
          ++CC.Noncurrent;
          break;
        case VarClass::Suspect:
          ++CC.Suspect;
          break;
        case VarClass::Current:
          ++CC.Current;
          break;
        }
        if (R.Recoverable)
          ++CC.Recovered;
        if (R.Degraded)
          ++CC.Degraded;
        PointKey K{MF.Id, S, V};
        Column[K] = {R.Kind, R.Recoverable};
        Lines.emplace(K, FI.Stmts[S].Loc.Line);
      }
    }
  }
  return true;
}

} // namespace

ProgramSweep sldb::sweepProgram(std::string_view Name,
                                std::string_view Src) {
  const auto &Table = pipelineLevels();
  ProgramSweep PS;
  PS.Levels.resize(Table.size());

  // Verdict matrix: one column per level, keyed by point.  Uninitialized
  // points participate too — an Uninitialized verdict is neither
  // available nor refused, so it can never trigger a regression, but its
  // presence keeps point sets comparable across levels.
  std::vector<std::map<PointKey, PointVerdict>> Columns(Table.size());
  std::map<PointKey, unsigned> Lines;

  // The variable/function name tables are identical at every level (the
  // frontend produces them); keep one build's ProgramInfo for rendering.
  DiagnosticEngine Diags;
  auto NamesM = compileToIR(Src, Diags);
  if (!NamesM) {
    PS.CompileError = Diags.hasErrors() ? Diags.str() : "frontend error";
    return PS;
  }
  const ProgramInfo &Info = *NamesM->Info;

  for (std::size_t L = 0; L < Table.size(); ++L)
    if (!classifyLevel(Src, Table[L], PS.Levels[L], Columns[L], Lines,
                       PS.CompileError))
      return PS;
  PS.Compiled = true;

  // Regressions, deduped per point: for each point in canonical order,
  // scan comparable level pairs (More ascending, then Less ascending)
  // and keep the first hit.
  for (const auto &KV : Lines) {
    const PointKey &Key = KV.first;
    bool Found = false;
    for (std::size_t More = 0; More < Table.size() && !Found; ++More) {
      auto MIt = Columns[More].find(Key);
      if (MIt == Columns[More].end() || !available(MIt->second))
        continue;
      for (std::size_t Less = 0; Less < Table.size() && !Found; ++Less) {
        if (!moreOptimized(Table[More], Table[Less]))
          continue;
        auto LIt = Columns[Less].find(Key);
        if (LIt == Columns[Less].end() || !refused(LIt->second))
          continue;
        AvailRegression R;
        R.Program = std::string(Name);
        R.Less = Table[Less].Level;
        R.More = Table[More].Level;
        std::tie(R.Func, R.Stmt, R.Var) = Key;
        R.FuncName = Info.func(R.Func).Name;
        R.VarName = Info.var(R.Var).Name;
        R.Line = Lines.at(Key);
        R.LessKind = LIt->second.Kind;
        R.MoreKind = MIt->second.Kind;
        R.MoreRecovered = MIt->second.Recoverable;
        PS.Regressions.push_back(std::move(R));
        Found = true;
      }
    }
  }
  return PS;
}

CrossLevelReport sldb::sweepCorpus(const std::vector<BenchProgram> &Corpus) {
  const auto &Table = pipelineLevels();
  CrossLevelReport R;
  R.Levels.resize(Table.size());
  for (std::size_t L = 0; L < Table.size(); ++L)
    R.Levels[L].Level = Table[L].Name;
  for (const BenchProgram &P : Corpus) {
    ++R.Programs;
    ProgramSweep PS = sweepProgram(P.Name, P.Source);
    if (!PS.Compiled) {
      ++R.CompileErrors;
      continue;
    }
    for (std::size_t L = 0; L < Table.size(); ++L)
      R.Levels[L].add(PS.Levels[L]);
    for (AvailRegression &Reg : PS.Regressions)
      R.Regressions.push_back(std::move(Reg));
  }
  return R;
}

std::string sldb::renderSweepReport(const CrossLevelReport &R) {
  std::string S = renderLevelReport(R.Levels);
  S += "regressions: " + std::to_string(R.Regressions.size()) +
       " candidate(s)";
  if (R.CompileErrors)
    S += ", " + std::to_string(R.CompileErrors) + " compile error(s)";
  S += "\n";
  for (const AvailRegression &Reg : R.Regressions)
    S += "  " + Reg.str() + "\n";
  return S;
}
