//===- eval/CrossLevel.h - Cross-level consistency sweep --------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static half of the cross-level consistency oracle: compile one
/// program at every level of the pipeline lattice (eval/Levels.h), run
/// every (breakpoint, variable) query at every level, and flag
/// *availability regressions* — a variable the debugger can show
/// (Current, or Recoverable per §2.5) at a more-optimized level while a
/// less-optimized level refuses or warns (Suspect / Nonresident).
///
/// A regression is a *candidate* anomaly, not automatically a bug: a
/// heavier pipeline can legitimately simplify away the very transform
/// that endangered the variable at the lighter level (constant folding
/// removing a PRE hoist, say).  The dynamic judge in
/// fuzz/QualityCampaign.h therefore re-checks each candidate against the
/// lockstep ground-truth oracle at the more-optimized level: a candidate
/// is *explained* when the oracle confirms every verdict there sound,
/// and *unexplained* — the tier-1 failure — when the oracle finds the
/// shown value wrong.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_EVAL_CROSSLEVEL_H
#define SLDB_EVAL_CROSSLEVEL_H

#include "core/Classifier.h"
#include "eval/Measure.h"

#include <string>
#include <string_view>
#include <vector>

namespace sldb {

/// One availability regression between two comparable levels, deduped
/// per (function, statement, variable) point: the first triggering level
/// pair in canonical table order is recorded.
struct AvailRegression {
  std::string Program; ///< Corpus program name or seed label.
  PipelineLevel Less = PipelineLevel::O0; ///< The refusing level.
  PipelineLevel More = PipelineLevel::O2; ///< The showing level.
  FuncId Func = InvalidFunc;
  StmtId Stmt = InvalidStmt;
  VarId Var = InvalidVar;
  std::string FuncName, VarName;
  unsigned Line = 0;          ///< Source line of the statement.
  VarClass LessKind = VarClass::Suspect;
  VarClass MoreKind = VarClass::Current;
  bool MoreRecovered = false; ///< Shown via §2.5 recovery at More.

  std::string str() const;
};

/// One program, swept across the whole level table.
struct ProgramSweep {
  bool Compiled = false;
  std::string CompileError;

  /// Per-level coverage/quality counts, in pipelineLevels() order.
  std::vector<CoverageCounts> Levels;

  /// Candidate availability regressions, in (function, statement,
  /// variable) point order.
  std::vector<AvailRegression> Regressions;
};

/// Compiles and classifies \p Src at every level.  Codegen runs with
/// scheduling off so these are byte-for-byte the builds the lockstep
/// oracle judges.  Never asserts: frontend/pipeline failures land in
/// CompileError.
ProgramSweep sweepProgram(std::string_view Name, std::string_view Src);

/// Whole-corpus sweep: per-level counts summed over the corpus, all
/// programs' regressions concatenated in corpus order.
struct CrossLevelReport {
  std::vector<CoverageCounts> Levels;
  std::vector<AvailRegression> Regressions;
  unsigned Programs = 0;
  unsigned CompileErrors = 0;
};

CrossLevelReport sweepCorpus(const std::vector<BenchProgram> &Corpus);

/// Renders a sweep as the level quality table plus one line per
/// regression; golden-tested under tests/golden/crosslevel/.
std::string renderSweepReport(const CrossLevelReport &R);

} // namespace sldb

#endif // SLDB_EVAL_CROSSLEVEL_H
