//===- eval/Levels.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/Levels.h"

#include "support/Casting.h"

using namespace sldb;

namespace {

OptOptions onePass(bool OptOptions::*Field) {
  OptOptions O = OptOptions::none();
  O.*Field = true;
  return O;
}

OptOptions lockstepSet() {
  OptOptions O = OptOptions::all();
  O.LoopPeel = false;
  O.LoopUnroll = false;
  return O;
}

/// The SSA tier on top of a base selection (GVN/SparseProp imply the
/// construct/destruct bracket via the pipeline, but the level table
/// states the bracket explicitly so subset tests see it).
OptOptions withSsa(OptOptions O, bool GVN, bool Sparse) {
  O.Ssa = true;
  O.GVN = GVN;
  O.SparseProp = Sparse;
  return O;
}

/// Everything: the historical O2 set plus the SSA tier and inlining.
OptOptions allSsa() {
  OptOptions O = withSsa(OptOptions::all(), true, true);
  O.Inline = true;
  return O;
}

std::vector<LevelSpec> buildTable() {
  // Canonical order; must stay aligned with the PipelineLevel enum
  // (pipelineLevels checks the alignment).
  return {
      {PipelineLevel::O0, "O0", OptOptions::none(), false},
      {PipelineLevel::ConstProp, "constprop",
       onePass(&OptOptions::ConstProp), false},
      {PipelineLevel::CopyProp, "copyprop", onePass(&OptOptions::CopyProp),
       false},
      {PipelineLevel::CSE, "cse", onePass(&OptOptions::CSE), false},
      {PipelineLevel::PRE, "pre", onePass(&OptOptions::PRE), false},
      {PipelineLevel::LICM, "licm", onePass(&OptOptions::LICM), false},
      {PipelineLevel::PDE, "pde", onePass(&OptOptions::PDE), false},
      {PipelineLevel::DCE, "dce", onePass(&OptOptions::DCE), false},
      {PipelineLevel::BranchOpt, "branchopt",
       onePass(&OptOptions::BranchOpt), false},
      {PipelineLevel::IVOpt, "ivopt", onePass(&OptOptions::IVOpt), false},
      {PipelineLevel::LoopPeel, "peel", onePass(&OptOptions::LoopPeel),
       false},
      {PipelineLevel::LoopUnroll, "unroll",
       onePass(&OptOptions::LoopUnroll), false},
      {PipelineLevel::O2nlFrame, "O2nl-frame", lockstepSet(), false},
      {PipelineLevel::O2nl, "O2nl", lockstepSet(), true},
      {PipelineLevel::O2Frame, "O2-frame", OptOptions::all(), false},
      {PipelineLevel::O2, "O2", OptOptions::all(), true},
      {PipelineLevel::Ssa, "ssa", onePass(&OptOptions::Ssa), false},
      {PipelineLevel::Gvn, "gvn", withSsa(OptOptions::none(), true, false),
       false},
      {PipelineLevel::SparseProp, "sparse",
       withSsa(OptOptions::none(), false, true), false},
      {PipelineLevel::InlineLevel, "inline", onePass(&OptOptions::Inline),
       false},
      {PipelineLevel::O2nlSsa, "O2nl-ssa", withSsa(lockstepSet(), true, true),
       true},
      {PipelineLevel::O2Ssa, "O2ssa", allSsa(), true},
  };
}

/// The pass-selection booleans as an iterable list, so subset tests and
/// table construction cannot fall out of sync with OptOptions.
const bool OptOptions::*const PassFields[] = {
    &OptOptions::ConstProp, &OptOptions::CopyProp,   &OptOptions::CSE,
    &OptOptions::PRE,       &OptOptions::LICM,       &OptOptions::PDE,
    &OptOptions::DCE,       &OptOptions::BranchOpt,  &OptOptions::LoopPeel,
    &OptOptions::LoopUnroll, &OptOptions::IVOpt,     &OptOptions::Ssa,
    &OptOptions::GVN,       &OptOptions::SparseProp, &OptOptions::Inline,
};

bool passSuperset(const OptOptions &A, const OptOptions &B) {
  for (auto Field : PassFields)
    if (B.*Field && !(A.*Field))
      return false;
  return true;
}

bool samePasses(const OptOptions &A, const OptOptions &B) {
  return passSuperset(A, B) && passSuperset(B, A);
}

} // namespace

const std::vector<LevelSpec> &sldb::pipelineLevels() {
  static const std::vector<LevelSpec> Table = buildTable();
  if (Table.size() != static_cast<std::size_t>(PipelineLevel::O2Ssa) + 1)
    sldb_unreachable("level table out of sync with the PipelineLevel enum");
  return Table;
}

const LevelSpec &sldb::levelSpec(PipelineLevel L) {
  const auto &Table = pipelineLevels();
  std::size_t I = static_cast<std::size_t>(L);
  if (I >= Table.size() || Table[I].Level != L)
    sldb_unreachable("level table out of canonical order");
  return Table[I];
}

const LevelSpec *sldb::findLevel(std::string_view Name) {
  for (const LevelSpec &S : pipelineLevels())
    if (Name == S.Name)
      return &S;
  return nullptr;
}

bool sldb::moreOptimized(const LevelSpec &A, const LevelSpec &B) {
  if (!passSuperset(A.Opts, B.Opts))
    return false;
  if (B.Promote && !A.Promote)
    return false;
  // Strictness: equal pass sets and equal promotion is not "more".
  return !(samePasses(A.Opts, B.Opts) && A.Promote == B.Promote);
}

bool sldb::judgeable(const LevelSpec &S) {
  return !S.Opts.LoopPeel && !S.Opts.LoopUnroll && !S.Opts.Inline;
}
