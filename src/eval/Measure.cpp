//===- eval/Measure.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/Measure.h"

#include "codegen/ISel.h"
#include "core/Classifier.h"
#include "ir/IRGen.h"
#include "support/Casting.h"
#include "support/ThreadPool.h"
#include "vm/Machine.h"

using namespace sldb;

namespace {

std::unique_ptr<IRModule> mustCompile(const BenchProgram &P) {
  DiagnosticEngine Diags;
  auto M = compileToIR(P.Source, Diags);
  if (!M) {
    // Benchmark sources ship with the library; failure is a library bug.
    sldb_unreachable(("benchmark program failed to compile: " +
                      std::string(P.Name) + "\n" + Diags.str())
                         .c_str());
  }
  return M;
}

void mustRunPipeline(IRModule &M, const BenchProgram &P,
                     const OptOptions &Opts) {
  Status PS = runPipelineEx(M, Opts, PipelineConfig());
  if (!PS.ok())
    sldb_unreachable(("benchmark pipeline failed: " + std::string(P.Name) +
                      ": " + PS.str())
                         .c_str());
}

} // namespace

SourceStats sldb::sourceStats(const BenchProgram &P) {
  SourceStats S;
  S.Name = P.Name;

  // Count non-blank source lines.
  std::string_view Src = P.Source;
  bool LineHasText = false;
  for (char C : Src) {
    if (C == '\n') {
      if (LineHasText)
        ++S.LinesOfCode;
      LineHasText = false;
    } else if (C != ' ' && C != '\t') {
      LineHasText = true;
    }
  }
  if (LineHasText)
    ++S.LinesOfCode;

  auto M = mustCompile(P);
  S.Functions = static_cast<unsigned>(M->Info->Funcs.size());
  std::uint64_t VarSum = 0;
  for (const FuncInfo &F : M->Info->Funcs) {
    S.Breakpoints += static_cast<unsigned>(F.Stmts.size());
    for (const StmtInfo &St : F.Stmts)
      VarSum += St.ScopeVars.size();
  }
  S.BreakpointsPerFunction =
      S.Functions ? static_cast<double>(S.Breakpoints) / S.Functions : 0.0;
  S.VarsPerBreakpoint =
      S.Breakpoints ? static_cast<double>(VarSum) / S.Breakpoints : 0.0;
  return S;
}

ClassAverages sldb::measureClassification(const BenchProgram &P,
                                          const OptOptions &Opts,
                                          bool Promote,
                                          bool EnableRecovery) {
  auto M = mustCompile(P);
  mustRunPipeline(*M, P, Opts);
  CodegenOptions CG;
  CG.PromoteVars = Promote;
  MachineModule MM = compileToMachine(*M, CG);

  ClassAverages A;
  std::uint64_t Counts[5] = {0, 0, 0, 0, 0};
  std::uint64_t RecoveredCount = 0;

  for (const MachineFunction &MF : MM.Funcs) {
    Classifier C(MF, *MM.Info, EnableRecovery);
    const FuncInfo &FI = MM.Info->func(MF.Id);
    for (StmtId S = 0; S < MF.StmtAddr.size(); ++S) {
      if (MF.StmtAddr[S] < 0)
        continue; // The statement emitted no code (paper: code location).
      ++A.Breakpoints;
      std::uint32_t Addr = static_cast<std::uint32_t>(MF.StmtAddr[S]);
      for (VarId V : FI.Stmts[S].ScopeVars) {
        Classification CC = C.classify(Addr, V);
        ++Counts[static_cast<unsigned>(CC.Kind)];
        if (CC.Recoverable)
          ++RecoveredCount;
      }
    }
  }
  if (A.Breakpoints == 0)
    return A;
  double N = A.Breakpoints;
  A.Uninitialized = Counts[0] / N;
  A.Nonresident = Counts[1] / N;
  A.Noncurrent = Counts[2] / N;
  A.Suspect = Counts[3] / N;
  A.Current = Counts[4] / N;
  A.Recovered = RecoveredCount / N;
  return A;
}

std::vector<ClassAverages>
sldb::measureClassificationAll(const std::vector<BenchProgram> &Corpus,
                               const OptOptions &Opts, bool Promote,
                               bool EnableRecovery, unsigned Jobs) {
  std::vector<ClassAverages> Out(Corpus.size());
  ThreadPool Pool(Jobs ? Jobs : ThreadPool::hardwareJobs());
  Pool.parallelFor(Corpus.size(), [&](std::size_t I, unsigned) {
    Out[I] = measureClassification(Corpus[I], Opts, Promote, EnableRecovery);
  });
  return Out;
}

CoverageCounts sldb::measureCoverage(const std::vector<BenchProgram> &Corpus,
                                     const LevelSpec &Level,
                                     const CoverageOptions &MO) {
  CoverageCounts CC;
  CC.Level = Level.Name;
  for (const BenchProgram &P : Corpus) {
    auto M = mustCompile(P);
    mustRunPipeline(*M, P, Level.Opts);
    CodegenOptions CG;
    CG.PromoteVars = Level.Promote;
    CG.Schedule = MO.Schedule;
    MachineModule MM = compileToMachine(*M, CG);
    for (const MachineFunction &MF : MM.Funcs) {
      Classifier C(MF, *MM.Info);
      if (MO.DegradeAll)
        C.degradeAllVariables();
      const FuncInfo &FI = MM.Info->func(MF.Id);
      CC.SrcStmts += MF.StmtAddr.size();
      for (StmtId S = 0; S < MF.StmtAddr.size(); ++S) {
        if (MF.StmtAddr[S] < 0)
          continue;
        ++CC.CodeStmts;
        std::uint32_t Addr = static_cast<std::uint32_t>(MF.StmtAddr[S]);
        for (VarId V : FI.Stmts[S].ScopeVars) {
          Classification R = C.classify(Addr, V);
          ++CC.Points;
          switch (R.Kind) {
          case VarClass::Uninitialized:
            ++CC.Uninitialized;
            break;
          case VarClass::Nonresident:
            ++CC.Nonresident;
            break;
          case VarClass::Noncurrent:
            ++CC.Noncurrent;
            break;
          case VarClass::Suspect:
            ++CC.Suspect;
            break;
          case VarClass::Current:
            ++CC.Current;
            break;
          }
          if (R.Recoverable)
            ++CC.Recovered;
          if (R.Degraded)
            ++CC.Degraded;
        }
      }
    }
  }
  return CC;
}

std::string sldb::renderCoverageReport(const std::vector<CoverageCounts> &Rows) {
  std::string S = "level      points  uninit  nonres  noncur suspect "
                  "current   recov  endangered  debuggable%\n";
  char Buf[160];
  for (const CoverageCounts &R : Rows) {
    std::snprintf(Buf, sizeof(Buf),
                  "%-10s %6llu  %6llu  %6llu  %6llu  %6llu  %6llu  %6llu"
                  "      %6llu       %6.2f\n",
                  R.Level.c_str(),
                  static_cast<unsigned long long>(R.Points),
                  static_cast<unsigned long long>(R.Uninitialized),
                  static_cast<unsigned long long>(R.Nonresident),
                  static_cast<unsigned long long>(R.Noncurrent),
                  static_cast<unsigned long long>(R.Suspect),
                  static_cast<unsigned long long>(R.Current),
                  static_cast<unsigned long long>(R.Recovered),
                  static_cast<unsigned long long>(R.endangered()),
                  R.pctDebuggable());
    S += Buf;
  }
  return S;
}

std::string sldb::renderLevelReport(const std::vector<CoverageCounts> &Rows) {
  std::string S = "level       points current   recov  endangered  nonres "
                  "degraded  linecov%  avail%\n";
  char Buf[192];
  for (const CoverageCounts &R : Rows) {
    std::snprintf(Buf, sizeof(Buf),
                  "%-10s %7llu %7llu  %6llu      %6llu  %6llu   %6llu"
                  "    %6.2f  %6.2f\n",
                  R.Level.c_str(),
                  static_cast<unsigned long long>(R.Points),
                  static_cast<unsigned long long>(R.Current),
                  static_cast<unsigned long long>(R.Recovered),
                  static_cast<unsigned long long>(R.endangered()),
                  static_cast<unsigned long long>(R.Nonresident),
                  static_cast<unsigned long long>(R.Degraded),
                  R.pctLineCoverage(), R.pctDebuggable());
    S += Buf;
  }
  return S;
}

std::string sldb::renderConservatismReport(
    const std::vector<ConservatismCounts> &Rows) {
  std::string S = "level       noncur(match)  suspect(match)  nonres(match)"
                  "  conservatism%\n";
  char Buf[192];
  for (const ConservatismCounts &R : Rows) {
    std::snprintf(Buf, sizeof(Buf),
                  "%-10s %6llu (%5llu)  %6llu (%5llu)  %5llu (%5llu)"
                  "         %6.2f\n",
                  R.Level.c_str(),
                  static_cast<unsigned long long>(R.Noncurrent),
                  static_cast<unsigned long long>(R.NoncurrentMatched),
                  static_cast<unsigned long long>(R.Suspect),
                  static_cast<unsigned long long>(R.SuspectMatched),
                  static_cast<unsigned long long>(R.Nonresident),
                  static_cast<unsigned long long>(R.NonresidentMatched),
                  R.rate());
    S += Buf;
  }
  return S;
}

CodeQuality sldb::measureCodeQuality(const BenchProgram &P,
                                     std::uint64_t Fuel) {
  CodeQuality Q;
  auto M0 = mustCompile(P);
  auto M2 = mustCompile(P);
  mustRunPipeline(*M2, P, OptOptions::all());

  CodegenOptions CG0;
  CG0.PromoteVars = false;
  CG0.Schedule = false;
  MachineModule MM0 = compileToMachine(*M0, CG0);
  MachineModule MM2 = compileToMachine(*M2, CodegenOptions());

  Machine V0(MM0, Fuel), V2(MM2, Fuel);
  StopReason R0 = V0.run();
  StopReason R2 = V2.run();
  Q.InstrUnoptimized = V0.instrCount();
  Q.InstrOptimized = V2.instrCount();
  Q.OutputsMatch = R0 == StopReason::Exited && R2 == StopReason::Exited &&
                   V0.outputText() == V2.outputText() &&
                   V0.exitValue() == V2.exitValue();
  return Q;
}
