//===- opt/Ssa.cpp - SSA construction and destruction -----------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SSA tier's bracket passes.  cmcc's pipeline is non-SSA bit-vector
/// dataflow; this bracket raises a function into a temp-level SSA form for
/// the sparse passes (GVN, sparse propagation) and lowers it back before
/// the sinking/dead-code cluster, preserving every §3 debug annotation:
///
///  * Only promotable scalars (non-global, non-address-taken, non-array)
///    are renamed, and only their *uses*: every source-level store
///    `V = e` is split GlobalCSE-style into `t = e; V = copy t` so the
///    assignment instruction — with its Stmt, IsSourceAssign, hoist/sink
///    flags and hoist key — stays in place for the debug analyses, while
///    downstream reads use the SSA version `t`.
///  * Markers and recovery values are never touched by construction: the
///    variable locations are still written at the same points, so every
///    recovery chain (paper §2.5) remains valid verbatim.
///  * Phis merge the annotations of their incoming versions under
///    explicit conservative rules: statement and hoist key survive only
///    when *all* incoming versions agree and are direct stores; the
///    hoisted/sunk flags are OR-ed over the known versions.  An unknown
///    contributor (entry value, another phi) forces the merged statement
///    and key to Invalid — losing precision, never soundness.
///  * Destruction splits critical edges and lowers each phi to edge
///    copies carrying the phi's merged annotations with Stmt=InvalidStmt
///    (like splitEdge's Br: compiler glue must not create phantom step
///    stops).  Parallel-copy hazards on an edge (one phi's operand naming
///    another phi's destination, as loop headers produce) are broken with
///    per-edge staging temps; otherwise a single-use operand defined in
///    the predecessor is coalesced directly into the phi destination.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include <unordered_map>
#include <vector>

using namespace sldb;

namespace {

/// Annotation snapshot of one SSA version, captured when the version is
/// pushed; consulted by the phi merge.
struct VersionAnn {
  bool DirectStore = false; ///< Version produced by a split var store.
  StmtId Stmt = InvalidStmt;
  bool Hoisted = false;
  bool Sunk = false;
  HoistKeyId Key = InvalidHoistKey;
};

class SsaConstruct : public Pass {
public:
  const char *name() const override { return "ssa-construct"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    // Renaming walks the dominator tree from the entry; drop blocks it
    // would never visit so no stale phi input can hide in them.
    if (F.removeUnreachable())
      AM.invalidateAll(F);

    CFGContext &CFG = AM.getResult<CFGContext>(F);
    DomFrontiers &DF = AM.getResult<DomFrontiers>(F);
    const ProgramInfo &Info = *M.Info;
    const unsigned NumBlocks = CFG.numBlocks();
    const std::size_t NumVars = Info.Vars.size();

    // Collect the definition blocks of every renamable variable.
    std::vector<std::vector<unsigned>> DefBlocks(NumVars);
    std::vector<bool> HasDef(NumVars, false);
    for (unsigned B = 0; B < NumBlocks; ++B)
      for (const Instr &I : CFG.block(B)->Insts)
        if (I.Dest.isVar() && Info.var(I.Dest.Id).isPromotable()) {
          if (DefBlocks[I.Dest.Id].empty() ||
              DefBlocks[I.Dest.Id].back() != B)
            DefBlocks[I.Dest.Id].push_back(B);
          HasDef[I.Dest.Id] = true;
        }

    bool Changed = false;

    // Phi insertion at the iterated dominance frontier of the def
    // blocks, ascending VarId order for determinism.
    std::vector<bool> HasPhi(NumBlocks), OnWork(NumBlocks);
    for (VarId V = 0; V < NumVars; ++V) {
      if (!HasDef[V])
        continue;
      std::fill(HasPhi.begin(), HasPhi.end(), false);
      std::fill(OnWork.begin(), OnWork.end(), false);
      std::vector<unsigned> Work = DefBlocks[V];
      for (unsigned B : Work)
        OnWork[B] = true;
      const IRType Ty = irTypeFor(Info.var(V).Ty);
      while (!Work.empty()) {
        unsigned B = Work.back();
        Work.pop_back();
        for (unsigned Y : DF.frontier(B)) {
          if (HasPhi[Y])
            continue;
          HasPhi[Y] = true;
          Instr Phi;
          Phi.Op = Opcode::Phi;
          Phi.Ty = Ty;
          Phi.Dest = F.newTemp(Ty);
          Phi.MarkVar = V; // The merged source variable.
          BasicBlock *BB = CFG.block(Y);
          BB->Insts.insert(BB->Insts.begin(), std::move(Phi));
          Changed = true;
          if (!OnWork[Y]) {
            OnWork[Y] = true;
            Work.push_back(Y);
          }
        }
      }
    }

    // Renaming: iterative preorder walk of the dominator tree with
    // per-variable version stacks.  An empty stack means version 0 — the
    // variable's entry value, read from the variable itself.
    std::vector<std::vector<Value>> VStack(NumVars);
    std::unordered_map<TempId, VersionAnn> Ann;
    auto Current = [&](VarId V) {
      return VStack[V].empty() ? Value::var(V, irTypeFor(Info.var(V).Ty))
                               : VStack[V].back();
    };

    struct Frame {
      unsigned B;
      unsigned Child = 0;
      std::size_t TrailMark;
    };
    std::vector<VarId> Trail;
    std::vector<Frame> Stack;
    Stack.push_back({0, 0, 0});

    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      if (Top.Child == 0) {
        Top.TrailMark = Trail.size();
        BasicBlock *BB = CFG.block(Top.B);
        for (auto It = BB->Insts.begin(); It != BB->Insts.end(); ++It) {
          Instr &I = *It;
          if (I.Op == Opcode::Phi) {
            VStack[I.MarkVar].push_back(I.Dest);
            Trail.push_back(I.MarkVar);
            Ann[I.Dest.Id] = VersionAnn(); // A merge, not a direct store.
            continue;
          }
          for (Value &Op : I.Ops)
            if (Op.isVar() && Info.var(Op.Id).isPromotable()) {
              Value Cur = Current(Op.Id);
              if (Cur != Op) {
                Op = Cur;
                Changed = true;
              }
            }
          if (I.Dest.isVar() && Info.var(I.Dest.Id).isPromotable()) {
            // Split `V = e` into `t = e; V = copy t`: the store keeps its
            // position and annotations, the version temp feeds uses.
            const VarId V = I.Dest.Id;
            const Value T = F.newTemp(I.Ty);
            Instr Compute = I;
            Compute.Dest = T;
            Compute.IsSourceAssign = false;
            I.Op = Opcode::Copy;
            I.Ops.clear();
            I.Ops.push_back(T);
            I.Callee = InvalidFunc;
            I.BuiltinKind = Builtin::None;
            BB->Insts.insert(It, std::move(Compute));
            VStack[V].push_back(T);
            Trail.push_back(V);
            VersionAnn &A = Ann[T.Id];
            A.DirectStore = true;
            A.Stmt = I.Stmt;
            A.Hoisted = I.IsHoisted;
            A.Sunk = I.IsSunk;
            A.Key = I.HoistKey;
            Changed = true;
          }
        }
        // Feed the successors' phis: one operand per edge occurrence,
        // matching the duplicated CondBr edges in the predecessor lists.
        for (unsigned S : CFG.succs(Top.B)) {
          BasicBlock *SB = CFG.block(S);
          for (auto It = SB->Insts.begin();
               It != SB->Insts.end() && It->Op == Opcode::Phi; ++It) {
            It->Ops.push_back(Current(It->MarkVar));
            It->PhiPreds.push_back(BB);
          }
        }
      }
      const std::vector<unsigned> &Kids = DF.domChildren(Top.B);
      if (Top.Child < Kids.size()) {
        unsigned Next = Kids[Top.Child++];
        Stack.push_back({Next, 0, 0});
        continue;
      }
      while (Trail.size() > Top.TrailMark) {
        VStack[Trail.back()].pop_back();
        Trail.pop_back();
      }
      Stack.pop_back();
    }

    if (!Changed)
      return PassResult::unchanged();

    // Merge annotations into each phi from its incoming versions.
    for (unsigned B = 0; B < NumBlocks; ++B) {
      BasicBlock *BB = CFG.block(B);
      for (auto It = BB->Insts.begin();
           It != BB->Insts.end() && It->Op == Opcode::Phi; ++It) {
        Instr &Phi = *It;
        bool AllKnown = !Phi.Ops.empty();
        bool First = true;
        StmtId S = InvalidStmt;
        HoistKeyId K = InvalidHoistKey;
        bool Hoisted = false, Sunk = false;
        for (const Value &Op : Phi.Ops) {
          const VersionAnn *A = nullptr;
          if (Op.isTemp()) {
            auto F2 = Ann.find(Op.Id);
            if (F2 != Ann.end())
              A = &F2->second;
          }
          if (!A || !A->DirectStore) {
            AllKnown = false; // Entry value or phi: unknown provenance.
            continue;
          }
          Hoisted |= A->Hoisted;
          Sunk |= A->Sunk;
          if (First) {
            S = A->Stmt;
            K = A->Key;
            First = false;
          } else {
            if (S != A->Stmt)
              S = InvalidStmt;
            if (K != A->Key)
              K = InvalidHoistKey;
          }
        }
        Phi.Stmt = AllKnown ? S : InvalidStmt;
        Phi.HoistKey = AllKnown ? K : InvalidHoistKey;
        Phi.IsHoisted = Hoisted;
        Phi.IsSunk = Sunk;
      }
    }

    // Instructions were inserted and operands rewritten within existing
    // blocks; the block graph is untouched.
    return {PreservedAnalyses::cfgShape(), true};
  }
};

/// One recorded phi, snapshotted before destruction mutates the CFG.
struct PhiRecord {
  BasicBlock *Block = nullptr;
  Value Dest;
  IRType Ty = IRType::Void;
  StmtId Stmt = InvalidStmt;
  bool Hoisted = false, Sunk = false;
  HoistKeyId Key = InvalidHoistKey;
  std::vector<Value> Ins;
  std::vector<BasicBlock *> Preds;
  std::vector<InstrId> CoalesceDef; ///< Per-operand def id, or InvalidInstr.
};

/// Un-splits surviving `t = e; V = copy t` pairs whose version temp has
/// no other reader: folds back to `V = e` with the store's annotations,
/// so the bracket round-trips to the original form wherever no SSA pass
/// consumed the version.  Use counts come from the pass-entry SsaDefUse
/// snapshot: matched defs are never phis, so their counts are exact even
/// after phi lowering, and temps minted later (staging temps) cannot
/// match — the trailing copy's destination must be a variable.  A temp
/// referenced by a marker recovery has an extra use in the snapshot and
/// is conservatively left split.
bool unsplitPairs(IRFunction &F, const SsaDefUse &DU) {
  bool Changed = false;
  for (BasicBlock *BB : F.Blocks) {
    for (auto It = BB->Insts.begin(); It != BB->Insts.end(); ++It) {
      auto Next = It;
      ++Next;
      if (Next == BB->Insts.end())
        break;
      Instr &Def = *It;
      Instr &Store = *Next;
      if (Store.Op != Opcode::Copy || !Store.Dest.isVar() ||
          Store.Ops.size() != 1 || !Def.Dest.isTemp() ||
          Store.Ops[0] != Def.Dest || Def.Op == Opcode::Phi)
        continue;
      if (Def.Dest.Id >= F.NextTemp || !DU.singleDef(Def.Dest.Id) ||
          DU.numUses(Def.Dest.Id) != 1)
        continue;
      Def.Dest = Store.Dest;
      Def.Stmt = Store.Stmt;
      Def.IsSourceAssign = Store.IsSourceAssign;
      Def.IsHoisted = Store.IsHoisted;
      Def.IsSunk = Store.IsSunk;
      Def.HoistKey = Store.HoistKey;
      BB->Insts.erase(Next);
      Changed = true;
    }
  }
  return Changed;
}

class SsaDestruct : public Pass {
public:
  const char *name() const override { return "ssa-destruct"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    SsaDefUse &DU = AM.getResult<SsaDefUse>(F);
    (void)M;

    // Snapshot every phi; compute per-operand coalescing candidacy while
    // the analyses are still valid.
    std::vector<PhiRecord> Phis;
    std::vector<unsigned> NumPreds(CFG.numBlocks());
    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      NumPreds[B] = static_cast<unsigned>(CFG.preds(B).size());
      BasicBlock *BB = CFG.block(B);
      for (auto It = BB->Insts.begin();
           It != BB->Insts.end() && It->Op == Opcode::Phi; ++It) {
        Instr &I = *It;
        PhiRecord R;
        R.Block = BB;
        R.Dest = I.Dest;
        R.Ty = I.Ty;
        R.Stmt = I.Stmt;
        R.Hoisted = I.IsHoisted;
        R.Sunk = I.IsSunk;
        R.Key = I.HoistKey;
        for (std::size_t A = 0; A < I.Ops.size(); ++A) {
          R.Ins.push_back(I.Ops[A]);
          R.Preds.push_back(I.PhiPreds[A]);
          InstrId Coal = InvalidInstr;
          const Value &V = I.Ops[A];
          if (V.isTemp() && DU.singleDef(V.Id) && DU.numUses(V.Id) == 1 &&
              DU.defBlockOf(V.Id) == CFG.indexOf(I.PhiPreds[A])) {
            const Instr &Def = F.Pool.instr(DU.defOf(V.Id));
            if (Def.Op != Opcode::Phi && Def.Dest == V)
              Coal = DU.defOf(V.Id);
          }
          R.CoalesceDef.push_back(Coal);
        }
        Phis.push_back(std::move(R));
      }
    }
    if (Phis.empty()) {
      // No phis to lower, but the construction split (`t = e; V = copy
      // t`) must still be folded back wherever no SSA pass consumed the
      // version temp: a surviving pair makes the store separately
      // killable by DCE, which detaches the statement's breakpoint from
      // the computation (the dead marker outranks it in StmtAddr
      // selection) and can leave the marker's recovery temp undefined.
      if (!unsplitPairs(F, DU))
        return PassResult::unchanged();
      return {PreservedAnalyses::cfgShape(), true};
    }

    // Split critical edges so the copies of one edge cannot execute on
    // another: one split per (pred, block) pair, rerouting every phi
    // operand that flowed along it.
    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      if (NumPreds[B] < 2)
        continue;
      BasicBlock *BB = CFG.block(B);
      std::vector<BasicBlock *> Done;
      for (PhiRecord &R : Phis) {
        if (R.Block != BB)
          continue;
        for (BasicBlock *P : R.Preds) {
          if (P->succRange().size() < 2)
            continue;
          bool Seen = false;
          for (BasicBlock *D : Done)
            Seen |= (D == P);
          if (Seen)
            continue;
          Done.push_back(P);
          BasicBlock *Mid = F.splitEdge(P, BB);
          for (PhiRecord &R2 : Phis)
            if (R2.Block == BB)
              for (BasicBlock *&RP : R2.Preds)
                if (RP == P)
                  RP = Mid;
        }
      }
    }

    // Lower each block's phis to copies at the end of every predecessor.
    // Copies carry the phi's merged hoist/sink annotations but no
    // statement: like splitEdge's Br, edge glue must not introduce a
    // step-oracle stop the source program does not have.
    auto MakeCopy = [&](const PhiRecord &R, Value Dest, Value Src) {
      Instr C;
      C.Op = Opcode::Copy;
      C.Ty = R.Ty;
      C.Dest = Dest;
      C.Ops.push_back(Src);
      C.Stmt = InvalidStmt;
      C.IsHoisted = R.Hoisted;
      C.IsSunk = R.Sunk;
      C.HoistKey = R.Key;
      return C;
    };
    auto InsertBeforeTerm = [&](BasicBlock *P, Instr C) {
      auto Pos = P->Insts.end();
      if (P->hasTerm())
        --Pos;
      P->Insts.insert(Pos, std::move(C));
    };

    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BasicBlock *BB = CFG.block(B);
      // The phis of BB, in block order.
      std::vector<PhiRecord *> Mine;
      for (PhiRecord &R : Phis)
        if (R.Block == BB)
          Mine.push_back(&R);
      if (Mine.empty())
        continue;
      // Distinct predecessors, in first-occurrence order.
      std::vector<BasicBlock *> PredList;
      for (PhiRecord *R : Mine)
        for (BasicBlock *P : R->Preds) {
          bool Seen = false;
          for (BasicBlock *D : PredList)
            Seen |= (D == P);
          if (!Seen)
            PredList.push_back(P);
        }
      for (BasicBlock *P : PredList) {
        // First operand flowing from P, per phi.
        std::vector<std::pair<PhiRecord *, std::size_t>> Edge;
        for (PhiRecord *R : Mine)
          for (std::size_t A = 0; A < R->Preds.size(); ++A)
            if (R->Preds[A] == P) {
              Edge.emplace_back(R, A);
              break;
            }
        // Parallel-copy interference: an operand naming another phi's
        // destination must read it before the sequential copies
        // overwrite it (the classic loop-header swap hazard).
        bool Interferes = false;
        for (auto &[R, A] : Edge)
          for (PhiRecord *R2 : Mine)
            Interferes |= (R->Ins[A] == R2->Dest);
        if (Interferes) {
          // Two phases: stage every read into a fresh temp, then write
          // every destination — a faithful parallel copy.
          std::vector<Value> Staged;
          for (auto &[R, A] : Edge) {
            Value Tmp = F.newTemp(R->Ty);
            Staged.push_back(Tmp);
            InsertBeforeTerm(P, MakeCopy(*R, Tmp, R->Ins[A]));
          }
          for (std::size_t E = 0; E < Edge.size(); ++E)
            InsertBeforeTerm(P, MakeCopy(*Edge[E].first,
                                         Edge[E].first->Dest, Staged[E]));
        } else {
          for (auto &[R, A] : Edge) {
            if (R->CoalesceDef[A] != InvalidInstr) {
              // Single-use operand defined in this predecessor: retarget
              // its def at the phi destination and skip the copy.
              Instr &Def = F.Pool.instr(R->CoalesceDef[A]);
              Def.Dest = R->Dest;
              Def.IsHoisted |= R->Hoisted;
              Def.IsSunk |= R->Sunk;
              continue;
            }
            InsertBeforeTerm(P, MakeCopy(*R, R->Dest, R->Ins[A]));
          }
        }
      }
      while (!BB->Insts.empty() && BB->Insts.front().Op == Opcode::Phi)
        BB->Insts.erase(BB->Insts.begin());
    }

    unsplitPairs(F, DU);

    // Edge splitting restructured the graph.
    return {PreservedAnalyses::none(), true};
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createSsaConstructPass() {
  return std::make_unique<SsaConstruct>();
}

std::unique_ptr<Pass> sldb::createSsaDestructPass() {
  return std::make_unique<SsaDestruct>();
}
