//===- opt/Propagation.cpp - Constant and copy propagation -----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global constant propagation and assignment (copy) propagation, both
/// built on reaching definitions.  These rewrites only change *operands*;
/// assignments stay in place, so no markers are needed.  Their effect on
/// debugging is indirect: propagation strips uses off assignments, making
/// them dead and thereby subject to dead-code elimination, whose
/// bookkeeping (markers with recovery values) reconstructs the chain the
/// paper describes in §2.5 / Figure 4.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include <unordered_map>

using namespace sldb;

namespace {

/// True if operand slot \p Idx of \p I may be rewritten (value position).
bool isRewritableOperand(const Instr &I, unsigned Idx) {
  if (I.Op == Opcode::AddrOf)
    return false; // Names a location, not a value.
  (void)Idx;
  return true;
}

class ConstantPropagation : public Pass {
public:
  const char *name() const override { return "constant-propagation"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    (void)M;
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    ValueIndex &VI = AM.getResult<ValueIndex>(F);
    ReachingDefs &RD = AM.getResult<ReachingDefs>(F);
    bool Changed = false;

    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BitVector Reach = RD.reachIn(B);
      for (Instr &I : CFG.block(B)->Insts) {
        for (unsigned OpIdx = 0; OpIdx < I.Ops.size(); ++OpIdx) {
          Value &Op = I.Ops[OpIdx];
          if (!isRewritableOperand(I, OpIdx))
            continue;
          if (!Op.isVar() && !Op.isTemp())
            continue;
          Value C;
          if (constValueAt(RD, VI, Reach, Op, C)) {
            Op = C;
            Changed = true;
          }
        }
        RD.transfer(I, Reach);
      }
    }
    // Operand rewrites leave the block graph alone but can shrink the
    // value universe, so only CFG-shape analyses survive.
    return {Changed ? PreservedAnalyses::cfgShape() : PreservedAnalyses::all(),
            Changed};
  }

private:
  /// Returns true (and the constant) if every definition of \p Op reaching
  /// here assigns the same known constant.
  bool constValueAt(const ReachingDefs &RD, const ValueIndex &VI,
                    const BitVector &Reach, const Value &Op, Value &Out) {
    unsigned Idx = VI.valueIndex(Op);
    if (Idx == ~0u)
      return false;
    // Iterate the (small) def set of the value filtered by Reach instead
    // of materializing the intersection: this runs once per var operand.
    const BitVector &Defs = RD.defsOfValue(Idx);
    bool HaveConst = false;
    for (unsigned D : Defs) {
      if (!Reach.test(D))
        continue;
      if (RD.isUnknownDef(D))
        return false;
      const Instr *DefI = RD.def(D).I;
      if (DefI->Op != Opcode::Copy || !DefI->Ops[0].isConst())
        return false;
      const Value &C = DefI->Ops[0];
      if (!HaveConst) {
        Out = C;
        HaveConst = true;
      } else if (Out != C) {
        return false;
      }
    }
    return HaveConst;
  }
};

/// Copy (assignment) propagation via *available copies*: a copy `D = S`
/// justifies rewriting a use of D into S only when every path from the
/// function entry to the use executes the copy with no later
/// redefinition (or clobber) of either D or S.  An earlier version
/// instead compared S's reaching-definition *sets* at the copy and at
/// the use, which the differential fuzzer proved unsound in loops: the
/// same definition can reach the copy from a previous iteration and
/// also re-execute between the copy and the use, leaving the sets equal
/// while the value changed (`v4 = v2; loop { v2 = v4*a + b; }` became a
/// compounding `v2 = v2*a + b`).
class CopyPropagation : public Pass {
public:
  const char *name() const override { return "assignment-propagation"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    (void)M;
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    ValueIndex &VI = AM.getResult<ValueIndex>(F);
    AliasInfo &AI = AM.getResult<AliasInfo>(F);

    // Snapshot the copy instances up front: rewrites below may rewrite a
    // copy's own source operand, and the data-flow solution is only
    // valid for the sources it was computed with.
    struct CopyInfo {
      const Instr *I;
      unsigned DestIdx, SrcIdx;
      Value Src;
      VarId DestVar, SrcVar; ///< For clobber checks; InvalidVar for temps.
    };
    std::vector<CopyInfo> Copies;
    std::unordered_map<const Instr *, unsigned> CopyIdx;
    for (unsigned B = 0; B < CFG.numBlocks(); ++B)
      for (const Instr &I : CFG.block(B)->Insts) {
        if (I.Op != Opcode::Copy ||
            (!I.Ops[0].isVar() && !I.Ops[0].isTemp()))
          continue;
        unsigned DI = VI.valueIndex(I.Dest);
        unsigned SI = VI.valueIndex(I.Ops[0]);
        if (DI == ~0u || SI == ~0u || DI == SI)
          continue;
        CopyIdx.emplace(&I, static_cast<unsigned>(Copies.size()));
        Copies.push_back({&I, DI, SI, I.Ops[0],
                          I.Dest.isVar() ? I.Dest.Id : InvalidVar,
                          I.Ops[0].isVar() ? I.Ops[0].Id : InvalidVar});
      }
    if (Copies.empty())
      return PassResult::unchanged();
    const unsigned U = static_cast<unsigned>(Copies.size());

    // Index the copies by the value whose definition kills them, so the
    // per-instruction kill scan touches only the affected copies instead
    // of all U of them.  Clobber-capable instructions (Store/Call) still
    // scan every copy — they are rare.
    std::unordered_map<unsigned, std::vector<unsigned>> KilledByDef;
    for (unsigned C = 0; C < U; ++C) {
      KilledByDef[Copies[C].DestIdx].push_back(C);
      if (Copies[C].SrcIdx != Copies[C].DestIdx)
        KilledByDef[Copies[C].SrcIdx].push_back(C);
    }
    // Ascending copy ids per destination, for the first-available use
    // rewrite below (same pick order as scanning all copies).
    std::unordered_map<unsigned, std::vector<unsigned>> CopiesByDest;
    for (unsigned C = 0; C < U; ++C)
      CopiesByDest[Copies[C].DestIdx].push_back(C);
    auto CanClobberAny = [](const Instr &I) {
      return I.Op == Opcode::Store || I.Op == Opcode::Call;
    };
    auto ForEachKilled = [&](const Instr &I, auto &&Fn) {
      unsigned DefIdx = VI.valueIndex(I.Dest);
      if (DefIdx != ~0u) {
        auto It = KilledByDef.find(DefIdx);
        if (It != KilledByDef.end())
          for (unsigned C : It->second)
            Fn(C);
      }
      if (CanClobberAny(I))
        for (unsigned C = 0; C < U; ++C) {
          const CopyInfo &CI = Copies[C];
          if ((CI.DestVar != InvalidVar && AI.mayClobber(I, CI.DestVar)) ||
              (CI.SrcVar != InvalidVar && AI.mayClobber(I, CI.SrcVar)))
            Fn(C);
        }
    };
    auto Transfer = [&](const Instr &I, BitVector &S) {
      ForEachKilled(I, [&](unsigned C) { S.reset(C); });
      auto It = CopyIdx.find(&I);
      if (It != CopyIdx.end())
        S.set(It->second); // Gen after kill: the copy redefines its dest.
    };

    DataflowProblem P;
    P.Dir = FlowDir::Forward;
    P.Meet = FlowMeet::Intersect;
    P.init(CFG, U);
    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BitVector Gen(U), Kill(U);
      for (const Instr &I : CFG.block(B)->Insts) {
        ForEachKilled(I, [&](unsigned C) {
          Gen.reset(C);
          Kill.set(C);
        });
        auto It = CopyIdx.find(&I);
        if (It != CopyIdx.end()) {
          Gen.set(It->second);
          Kill.reset(It->second);
        }
      }
      P.Gen[B] = std::move(Gen);
      P.Kill[B] = std::move(Kill);
    }
    DataflowResult R = solveDataflow(CFG, P);

    bool Changed = false;
    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BitVector Avail = R.In[B];
      for (Instr &I : CFG.block(B)->Insts) {
        for (unsigned OpIdx = 0; OpIdx < I.Ops.size(); ++OpIdx) {
          Value &Op = I.Ops[OpIdx];
          if (!isRewritableOperand(I, OpIdx))
            continue;
          if (!Op.isVar() && !Op.isTemp())
            continue;
          unsigned Idx = VI.valueIndex(Op);
          if (Idx == ~0u)
            continue;
          auto CIt = CopiesByDest.find(Idx);
          if (CIt == CopiesByDest.end())
            continue;
          for (unsigned C : CIt->second) {
            if (!Avail.test(C))
              continue;
            Value Src = Copies[C].Src;
            Src.Ty = Op.Ty; // Keep the use-site type.
            Op = Src;
            Changed = true;
            break;
          }
        }
        Transfer(I, Avail);
      }
    }
    return {Changed ? PreservedAnalyses::cfgShape() : PreservedAnalyses::all(),
            Changed};
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createConstantPropagationPass() {
  return std::make_unique<ConstantPropagation>();
}

std::unique_ptr<Pass> sldb::createCopyPropagationPass() {
  return std::make_unique<CopyPropagation>();
}
