//===- opt/Propagation.cpp - Constant and copy propagation -----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global constant propagation and assignment (copy) propagation, both
/// built on reaching definitions.  These rewrites only change *operands*;
/// assignments stay in place, so no markers are needed.  Their effect on
/// debugging is indirect: propagation strips uses off assignments, making
/// them dead and thereby subject to dead-code elimination, whose
/// bookkeeping (markers with recovery values) reconstructs the chain the
/// paper describes in §2.5 / Figure 4.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/CFGContext.h"
#include "analysis/InstrInfo.h"
#include "analysis/ReachingDefs.h"

#include <unordered_map>

using namespace sldb;

namespace {

/// True if operand slot \p Idx of \p I may be rewritten (value position).
bool isRewritableOperand(const Instr &I, unsigned Idx) {
  if (I.Op == Opcode::AddrOf)
    return false; // Names a location, not a value.
  (void)Idx;
  return true;
}

class ConstantPropagation : public Pass {
public:
  const char *name() const override { return "constant-propagation"; }

  bool run(IRFunction &F, IRModule &M) override {
    CFGContext CFG(F);
    ValueIndex VI(F, *M.Info);
    ReachingDefs RD(CFG, VI, *M.Info);
    bool Changed = false;

    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BitVector Reach = RD.reachIn(B);
      for (Instr &I : CFG.block(B)->Insts) {
        for (unsigned OpIdx = 0; OpIdx < I.Ops.size(); ++OpIdx) {
          Value &Op = I.Ops[OpIdx];
          if (!isRewritableOperand(I, OpIdx))
            continue;
          if (!Op.isVar() && !Op.isTemp())
            continue;
          Value C;
          if (constValueAt(RD, VI, Reach, Op, C)) {
            Op = C;
            Changed = true;
          }
        }
        RD.transfer(I, Reach);
      }
    }
    return Changed;
  }

private:
  /// Returns true (and the constant) if every definition of \p Op reaching
  /// here assigns the same known constant.
  bool constValueAt(const ReachingDefs &RD, const ValueIndex &VI,
                    const BitVector &Reach, const Value &Op, Value &Out) {
    unsigned Idx = VI.valueIndex(Op);
    if (Idx == ~0u)
      return false;
    BitVector Defs = RD.defsOfValue(Idx);
    Defs &= Reach;
    bool HaveConst = false;
    for (unsigned D : Defs) {
      if (RD.isUnknownDef(D))
        return false;
      const Instr *DefI = RD.def(D).I;
      if (DefI->Op != Opcode::Copy || !DefI->Ops[0].isConst())
        return false;
      const Value &C = DefI->Ops[0];
      if (!HaveConst) {
        Out = C;
        HaveConst = true;
      } else if (Out != C) {
        return false;
      }
    }
    return HaveConst;
  }
};

class CopyPropagation : public Pass {
public:
  const char *name() const override { return "assignment-propagation"; }

  bool run(IRFunction &F, IRModule &M) override {
    CFGContext CFG(F);
    ValueIndex VI(F, *M.Info);
    ReachingDefs RD(CFG, VI, *M.Info);

    // Cache the reach set at every copy definition (needed to check that
    // the copied source still has the same value at the use point).
    std::unordered_map<const Instr *, BitVector> ReachAtCopy;
    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BitVector Reach = RD.reachIn(B);
      for (Instr &I : CFG.block(B)->Insts) {
        if (I.Op == Opcode::Copy &&
            (I.Ops[0].isVar() || I.Ops[0].isTemp()))
          ReachAtCopy.emplace(&I, Reach);
        RD.transfer(I, Reach);
      }
    }

    bool Changed = false;
    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BitVector Reach = RD.reachIn(B);
      for (Instr &I : CFG.block(B)->Insts) {
        for (unsigned OpIdx = 0; OpIdx < I.Ops.size(); ++OpIdx) {
          Value &Op = I.Ops[OpIdx];
          if (!isRewritableOperand(I, OpIdx))
            continue;
          if (!Op.isVar() && !Op.isTemp())
            continue;
          Value Src;
          if (copySourceAt(RD, VI, Reach, ReachAtCopy, Op, Src)) {
            Src.Ty = Op.Ty; // Keep the use-site type.
            Op = Src;
            Changed = true;
          }
        }
        RD.transfer(I, Reach);
      }
    }
    return Changed;
  }

private:
  bool copySourceAt(
      const ReachingDefs &RD, const ValueIndex &VI, const BitVector &Reach,
      const std::unordered_map<const Instr *, BitVector> &ReachAtCopy,
      const Value &Op, Value &Out) {
    unsigned Idx = VI.valueIndex(Op);
    if (Idx == ~0u)
      return false;
    BitVector Defs = RD.defsOfValue(Idx);
    Defs &= Reach;
    // Exactly one definition must reach, and it must be a copy.
    int First = Defs.findFirst();
    if (First < 0 || Defs.findNext(static_cast<unsigned>(First)) >= 0)
      return false;
    unsigned D = static_cast<unsigned>(First);
    if (RD.isUnknownDef(D))
      return false;
    const Instr *Copy = RD.def(D).I;
    if (Copy->Op != Opcode::Copy)
      return false;
    const Value &Src = Copy->Ops[0];
    if (!Src.isVar() && !Src.isTemp())
      return false;
    unsigned SrcIdx = VI.valueIndex(Src);
    if (SrcIdx == ~0u)
      return false;
    // The source must have the same reaching definitions here as at the
    // copy (i.e., its value is unchanged on every path between them).
    auto It = ReachAtCopy.find(Copy);
    if (It == ReachAtCopy.end())
      return false;
    BitVector SrcHere = RD.defsOfValue(SrcIdx);
    BitVector SrcThere = SrcHere;
    SrcHere &= Reach;
    SrcThere &= It->second;
    if (SrcHere != SrcThere)
      return false;
    Out = Src;
    return true;
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createConstantPropagationPass() {
  return std::make_unique<ConstantPropagation>();
}

std::unique_ptr<Pass> sldb::createCopyPropagationPass() {
  return std::make_unique<CopyPropagation>();
}
