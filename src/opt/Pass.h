//===- opt/Pass.h - Optimization pass interface -----------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass interface and pipeline driver replicating cmcc's optimizer
/// (paper Table 1).  Every pass performs the debug bookkeeping of paper §3
/// as it transforms: hoisted/sunk flags, dead/avail markers, recovery
/// values.  Optimizations themselves ignore markers entirely — bookkeeping
/// never constrains optimization (the non-invasive model).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_OPT_PASS_H
#define SLDB_OPT_PASS_H

#include "ir/IR.h"

#include <memory>
#include <string>
#include <vector>

namespace sldb {

/// Base class for function-level optimization passes.
class Pass {
public:
  virtual ~Pass() = default;

  /// Pass name for -debug style dumps and Table 1 reporting.
  virtual const char *name() const = 0;

  /// Transforms \p F.  Returns true if anything changed.
  virtual bool run(IRFunction &F, IRModule &M) = 0;
};

/// Factory functions (one per Table 1 entry implemented at the IR level).
std::unique_ptr<Pass> createLocalSimplifyPass();
std::unique_ptr<Pass> createConstantPropagationPass();
std::unique_ptr<Pass> createCopyPropagationPass();
std::unique_ptr<Pass> createGlobalCSEPass();
std::unique_ptr<Pass> createPartialRedundancyElimPass();
std::unique_ptr<Pass> createLoopInvariantCodeMotionPass();
std::unique_ptr<Pass> createPartialDeadCodeElimPass();
std::unique_ptr<Pass> createDeadCodeEliminationPass();
std::unique_ptr<Pass> createBranchOptPass();
std::unique_ptr<Pass> createLoopPeelPass();
std::unique_ptr<Pass> createLoopUnrollPass();
std::unique_ptr<Pass> createInductionVariableOptPass();

/// Which optimizations to run (the paper's "global optimizations").
struct OptOptions {
  bool ConstProp = true;
  bool CopyProp = true;
  bool CSE = true;
  bool PRE = true;       ///< Code hoisting (endangers variables).
  bool LICM = true;
  bool PDE = true;       ///< Code sinking (endangers variables).
  bool DCE = true;       ///< Dead assignment elimination (endangers).
  bool BranchOpt = true;
  bool LoopPeel = true;
  bool LoopUnroll = true;
  bool IVOpt = true;

  static OptOptions none() {
    OptOptions O;
    O.ConstProp = O.CopyProp = O.CSE = O.PRE = O.LICM = O.PDE = O.DCE =
        O.BranchOpt = O.LoopPeel = O.LoopUnroll = O.IVOpt = false;
    return O;
  }
  static OptOptions all() { return OptOptions(); }
};

/// Runs the cmcc-like pipeline over every function of \p M.
/// Passes are ordered so that hoisting (PRE) runs before sinking (PDE),
/// matching the interaction the paper reports (§4: hoisted assignments
/// that were partially dead were subsequently sunk).
void runPipeline(IRModule &M, const OptOptions &Opts);

/// One pass's aggregate activity over a module: how many (function, pass
/// slot) runs reported a change.  Names repeat in pipeline order when a
/// pass appears in several pipeline slots.
struct PassFiring {
  std::string Name;
  unsigned Changed = 0; ///< Number of functions the slot transformed.
};

/// runPipeline plus per-slot change reporting.  The fuzzing harness uses
/// this to prove the generated corpus actually exercises every
/// optimization (no silently-dead fuzz coverage).
void runPipelineInstrumented(IRModule &M, const OptOptions &Opts,
                             std::vector<PassFiring> &Firings);

/// Returns the pipeline pass names in execution order (Table 1 bench).
std::vector<std::string> pipelinePassNames(const OptOptions &Opts);

class CFGContext;

/// Shared §3 bookkeeping for passes that *remove* an assignment to \p V
/// (DCE deletion, PDE sinking): every AvailMarker of V forward-reachable
/// from the removal site without an intervening real assignment to V
/// loses its "actual == expected here" certificate — it relied on the
/// removed store having filled V's location.  Keeping it would be
/// unsound (the marker kills V's dead reach, so the debugger presents a
/// stale or never-written location as Current).  Demotes each such
/// marker to a recovery-less DeadMarker: still an eliminated-assignment
/// record, now honestly stale.  DeadMarkers of V do not stop the walk
/// (an eliminated assignment restores nothing).
void demoteUnsoundAvailMarkers(CFGContext &CFG, unsigned Block,
                               std::list<Instr>::iterator Start, VarId V);

} // namespace sldb

#endif // SLDB_OPT_PASS_H
