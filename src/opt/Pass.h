//===- opt/Pass.h - Optimization pass interface -----------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass interface and pipeline driver replicating cmcc's optimizer
/// (paper Table 1).  Every pass performs the debug bookkeeping of paper §3
/// as it transforms: hoisted/sunk flags, dead/avail markers, recovery
/// values.  Optimizations themselves ignore markers entirely — bookkeeping
/// never constrains optimization (the non-invasive model).
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_OPT_PASS_H
#define SLDB_OPT_PASS_H

#include "analysis/AnalysisManager.h"
#include "ir/IR.h"
#include "support/Status.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace sldb {

/// What one pass invocation did: the analyses it left intact (consumed
/// by the AnalysisManager at the pass boundary) and whether the IR
/// changed at all.  The two are distinct: a pass can mutate the IR while
/// keeping CFG-shape analyses valid (cfgShape), and a pass that created
/// a preheader mid-run (invalidating eagerly, then refetching) can
/// report Changed=false with everything preserved because its caches
/// are already current.
struct PassResult {
  PreservedAnalyses Preserved = PreservedAnalyses::none();
  bool Changed = false;

  static PassResult unchanged() {
    return {PreservedAnalyses::all(), false};
  }
};

/// Base class for function-level optimization passes.
class Pass {
public:
  virtual ~Pass() = default;

  /// Pass name for -debug style dumps and Table 1 reporting.
  virtual const char *name() const = 0;

  /// Transforms \p F, fetching analyses through \p AM (passes never
  /// construct CFGContext/Dominators/... directly).  Returns what was
  /// preserved plus a changed bit.
  virtual PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) = 0;

  /// Convenience for standalone use (unit tests, experiments): runs with
  /// a throwaway analysis manager and returns the changed bit.
  bool run(IRFunction &F, IRModule &M);
};

/// Factory functions (one per Table 1 entry implemented at the IR level).
std::unique_ptr<Pass> createLocalSimplifyPass();
std::unique_ptr<Pass> createConstantPropagationPass();
std::unique_ptr<Pass> createCopyPropagationPass();
std::unique_ptr<Pass> createGlobalCSEPass();
std::unique_ptr<Pass> createPartialRedundancyElimPass();
std::unique_ptr<Pass> createLoopInvariantCodeMotionPass();
std::unique_ptr<Pass> createPartialDeadCodeElimPass();
std::unique_ptr<Pass> createDeadCodeEliminationPass();
std::unique_ptr<Pass> createBranchOptPass();
std::unique_ptr<Pass> createLoopPeelPass();
std::unique_ptr<Pass> createLoopUnrollPass();
std::unique_ptr<Pass> createInductionVariableOptPass();

/// SSA tier (constructed and destructed inside the pipeline; phis never
/// escape to codegen or the interpreter).
std::unique_ptr<Pass> createSsaConstructPass();
std::unique_ptr<Pass> createSsaDestructPass();
std::unique_ptr<Pass> createGVNPass();
std::unique_ptr<Pass> createSparsePropPass();
std::unique_ptr<Pass> createInlinePass();

/// Which optimizations to run (the paper's "global optimizations").
struct OptOptions {
  bool ConstProp = true;
  bool CopyProp = true;
  bool CSE = true;
  bool PRE = true;       ///< Code hoisting (endangers variables).
  bool LICM = true;
  bool PDE = true;       ///< Code sinking (endangers variables).
  bool DCE = true;       ///< Dead assignment elimination (endangers).
  bool BranchOpt = true;
  bool LoopPeel = true;
  bool LoopUnroll = true;
  bool IVOpt = true;
  // SSA tier: off by default so OptOptions::all() (the historical O2
  // pipeline) is unchanged; the SSA levels flip these explicitly.
  bool Ssa = false;        ///< Bracket the SSA passes (construct/destruct).
  bool GVN = false;        ///< SSA global value numbering (implies Ssa).
  bool SparseProp = false; ///< SSA sparse copy/const propagation (implies Ssa).
  bool Inline = false;     ///< Leaf-function inlining (pre-SSA slot).

  static OptOptions none() {
    OptOptions O;
    O.ConstProp = O.CopyProp = O.CSE = O.PRE = O.LICM = O.PDE = O.DCE =
        O.BranchOpt = O.LoopPeel = O.LoopUnroll = O.IVOpt = false;
    O.Ssa = O.GVN = O.SparseProp = O.Inline = false;
    return O;
  }
  static OptOptions all() { return OptOptions(); }
};

/// Driver knobs beyond pass selection.
struct PipelineConfig {
  bool TimePasses = false; ///< Collect per-slot wall time (needs Stats).
  bool VerifyEach = false; ///< Run the IR verifier after every pass; the
                           ///< first failure stops the pipeline and is
                           ///< returned as a VerifyFailure Status.
  bool VerifyAnnotations = true; ///< Check the debug-bookkeeping
                                 ///< invariants after every pass and
                                 ///< record findings on the function for
                                 ///< classifier degradation (cheap linear
                                 ///< scan; never stops the pipeline).
  bool FixpointPropagation = false; ///< Iterate the propagate→simplify
                                    ///< clusters to a fixed point
                                    ///< (bounded) instead of one sweep.
  bool DisableAnalysisCache = false; ///< Invalidate all analyses at every
                                     ///< pass boundary (models the
                                     ///< pre-manager pipeline; used by
                                     ///< the throughput bench as its
                                     ///< uncached reference).
  /// Called after each (pass, function) step; used by the stale-cache
  /// property test to compare cached analyses against fresh ones.
  std::function<void(IRFunction &F, IRModule &M, AnalysisManager &AM,
                     const char *PassName)>
      AfterPass;

  /// Default config with environment overrides applied
  /// (SLDB_VERIFY_EACH=1 enables VerifyEach), so test re-registrations
  /// can flip verification without plumbing flags through every caller.
  static PipelineConfig fromEnvironment();
};

/// Per-slot activity of one pipeline run.
struct PassSlotStats {
  std::string Name;
  unsigned Runs = 0;    ///< Function invocations.
  unsigned Changed = 0; ///< Invocations that reported a change.
  double WallMs = 0;    ///< Filled when PipelineConfig::TimePasses.
};

/// Aggregate observability of one pipeline run.
struct PipelineStats {
  std::vector<PassSlotStats> Slots;
  AnalysisStats Analyses; ///< Cache hits/misses of the shared manager.
  double TotalMs = 0;     ///< Filled when PipelineConfig::TimePasses.
};

/// Runs the cmcc-like pipeline over every function of \p M.
/// Passes are ordered so that hoisting (PRE) runs before sinking (PDE),
/// matching the interaction the paper reports (§4: hoisted assignments
/// that were partially dead were subsequently sunk).  Convenience
/// wrapper: a VerifyEach failure is reported on stderr and aborts (the
/// Status-aware drivers use runPipelineEx instead).
void runPipeline(IRModule &M, const OptOptions &Opts);

/// Full-control pipeline entry point: analysis caching across passes,
/// optional per-pass timing/verification, optional fixpoint iteration of
/// the propagation clusters.  \p Stats may be null.  Returns a
/// VerifyFailure error (and stops transforming) when VerifyEach is on and
/// a pass broke the IR; the module must then be discarded.
Status runPipelineEx(IRModule &M, const OptOptions &Opts,
                     const PipelineConfig &Config,
                     PipelineStats *Stats = nullptr);

/// One pass's aggregate activity over a module: how many (function, pass
/// slot) runs reported a change.  Names repeat in pipeline order when a
/// pass appears in several pipeline slots.
struct PassFiring {
  std::string Name;
  unsigned Changed = 0; ///< Number of functions the slot transformed.
};

/// runPipeline plus per-slot change reporting.  The fuzzing harness uses
/// this to prove the generated corpus actually exercises every
/// optimization (no silently-dead fuzz coverage).
Status runPipelineInstrumented(IRModule &M, const OptOptions &Opts,
                               std::vector<PassFiring> &Firings);

/// Returns the pipeline pass names in execution order (Table 1 bench).
std::vector<std::string> pipelinePassNames(const OptOptions &Opts);

class CFGContext;

/// Shared §3 bookkeeping for passes that *remove* an assignment to \p V
/// (DCE deletion, PDE sinking): every AvailMarker of V forward-reachable
/// from the removal site without an intervening real assignment to V
/// loses its "actual == expected here" certificate — it relied on the
/// removed store having filled V's location.  Keeping it would be
/// unsound (the marker kills V's dead reach, so the debugger presents a
/// stale or never-written location as Current).  Demotes each such
/// marker to a recovery-less DeadMarker: still an eliminated-assignment
/// record, now honestly stale.  DeadMarkers of V do not stop the walk
/// (an eliminated assignment restores nothing).
void demoteUnsoundAvailMarkers(CFGContext &CFG, unsigned Block,
                               InstrList::iterator Start, VarId V);

} // namespace sldb

#endif // SLDB_OPT_PASS_H
