//===- opt/GlobalCSE.cpp - Common subexpression elimination ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global common-subexpression elimination over available expressions.
/// When `x = a op b` is redundant, the providing computations are rewritten
/// to save their value in a shared temporary (`t = a op b; x = copy t`) and
/// the redundant occurrence becomes `y = copy t`.  The source assignment
/// survives as the copy (keeping its annotations); if propagation later
/// kills the copy, dead-code elimination records `t` as the *recovery*
/// value on the marker — reproducing the paper's Figure 4 chain where a
/// variable's value is reconstructed from the CSE temporary (§2.5).
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/Dataflow.h"

#include <map>
#include <vector>

using namespace sldb;

namespace {

/// Lexical expression key: opcode over constant/variable operands.
struct ExprKey {
  Opcode Op;
  IRType Ty;
  Value A, B; ///< B.isNone() for unary.

  bool operator<(const ExprKey &RHS) const {
    auto Tuple = [](const ExprKey &K) {
      auto ValKey = [](const Value &V) {
        return std::tuple(static_cast<int>(V.K), V.Id, V.IntVal,
                          V.DblVal);
      };
      return std::tuple(static_cast<int>(K.Op), static_cast<int>(K.Ty),
                        ValKey(K.A), ValKey(K.B));
    };
    return Tuple(*this) < Tuple(RHS);
  }
};

/// Returns true and fills \p Key if \p I computes a CSE-able expression.
bool exprKeyOf(const Instr &I, ExprKey &Key) {
  auto OperandOK = [](const Value &V) { return V.isConst() || V.isVar(); };
  if (isBinaryOp(I.Op)) {
    if (!OperandOK(I.Ops[0]) || !OperandOK(I.Ops[1]))
      return false;
    if (I.Op == Opcode::Div || I.Op == Opcode::Rem) {
      // Never re-order potential traps; only CSE with constant nonzero
      // divisor.
      if (!(I.Ops[1].isConstInt() && I.Ops[1].IntVal != 0))
        return false;
    }
    Key = {I.Op, I.Ty, I.Ops[0], I.Ops[1]};
    return true;
  }
  if (I.Op == Opcode::Neg || I.Op == Opcode::Not ||
      I.Op == Opcode::CastItoD || I.Op == Opcode::CastDtoI) {
    if (!OperandOK(I.Ops[0]))
      return false;
    Key = {I.Op, I.Ty, I.Ops[0], Value::none()};
    return true;
  }
  return false;
}

/// Returns true if \p I invalidates \p Key (redefines an operand).
bool killsKey(const Instr &I, const ExprKey &Key, const AliasInfo &AI) {
  auto Killed = [&](const Value &V) {
    if (!V.isVar())
      return false;
    if (I.Dest.isVar() && I.Dest.Id == V.Id)
      return true;
    return AI.mayClobber(I, V.Id);
  };
  return Killed(Key.A) || Killed(Key.B);
}

/// Only var-defining instructions and memory writers can kill any key;
/// everything else skips the per-key loop.
bool mayKillAnyKey(const Instr &I) {
  return I.Dest.isVar() || I.Op == Opcode::Store || I.Op == Opcode::Call;
}

class GlobalCSE : public Pass {
public:
  const char *name() const override { return "redundancy-elimination(cse)"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    AliasInfo &AI = AM.getResult<AliasInfo>(F);

    // Enumerate expression keys.
    std::map<ExprKey, unsigned> KeyIds;
    std::vector<ExprKey> Keys;
    for (unsigned B = 0; B < CFG.numBlocks(); ++B)
      for (const Instr &I : CFG.block(B)->Insts) {
        ExprKey K;
        if (exprKeyOf(I, K) && !KeyIds.count(K)) {
          KeyIds[K] = static_cast<unsigned>(Keys.size());
          Keys.push_back(K);
        }
      }
    if (Keys.empty())
      return PassResult::unchanged();

    // Available expressions (forward, intersect).
    DataflowProblem P;
    P.Dir = FlowDir::Forward;
    P.Meet = FlowMeet::Intersect;
    P.init(CFG, static_cast<unsigned>(Keys.size()));
    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BitVector &Gen = P.Gen[B];
      BitVector &Kill = P.Kill[B];
      for (const Instr &I : CFG.block(B)->Insts) {
        // The computation reads its operands before the destination is
        // written: gen first, then apply kills (which may revoke the gen,
        // e.g. `x = x + 1` does not leave `x + 1` available).
        ExprKey K;
        if (exprKeyOf(I, K)) {
          unsigned Id = KeyIds[K];
          Gen.set(Id);
          Kill.reset(Id);
        }
        if (mayKillAnyKey(I))
          for (unsigned KI = 0; KI < Keys.size(); ++KI)
            if (killsKey(I, Keys[KI], AI)) {
              Gen.reset(KI);
              Kill.set(KI);
            }
      }
    }
    DataflowResult AV = solveDataflow(CFG, P);

    // Find redundant occurrences: Key available on entry to the
    // instruction.
    std::vector<bool> NeedsProvider(Keys.size(), false);
    std::vector<std::pair<Instr *, unsigned>> Redundant;
    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BitVector Avail = AV.In[B];
      for (Instr &I : CFG.block(B)->Insts) {
        ExprKey K;
        bool HasKey = exprKeyOf(I, K);
        unsigned Id = HasKey ? KeyIds[K] : 0;
        if (HasKey && Avail.test(Id)) {
          Redundant.emplace_back(&I, Id);
          NeedsProvider[Id] = true;
        }
        if (HasKey)
          Avail.set(Id);
        if (mayKillAnyKey(I))
          for (unsigned KI = 0; KI < Keys.size(); ++KI)
            if (killsKey(I, Keys[KI], AI))
              Avail.reset(KI);
      }
    }
    if (Redundant.empty())
      return PassResult::unchanged();

    // Allocate one shared temp per needed key and rewrite the providers:
    // every non-redundant computation `X = e` with NeedsProvider becomes
    // `t = e; X = copy t`.
    std::vector<Value> KeyTemp(Keys.size());
    for (unsigned K = 0; K < Keys.size(); ++K)
      if (NeedsProvider[K])
        KeyTemp[K] = F.newTemp(Keys[K].Ty);

    std::vector<const Instr *> RedundantSet;
    for (auto &[I, Id] : Redundant)
      RedundantSet.push_back(I);
    auto IsRedundant = [&](const Instr *I) {
      for (const Instr *R : RedundantSet)
        if (R == I)
          return true;
      return false;
    };

    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BasicBlock *BB = CFG.block(B);
      for (auto It = BB->Insts.begin(); It != BB->Insts.end(); ++It) {
        ExprKey K;
        if (!exprKeyOf(*It, K))
          continue;
        unsigned Id = KeyIds[K];
        if (!NeedsProvider[Id] || IsRedundant(&*It))
          continue;
        // Provider rewrite: t = e (keeps position), X = copy t (keeps the
        // source-assignment identity and annotations).
        Instr Compute = *It;
        Instr &CopyI = *It;
        Value OldDest = CopyI.Dest;
        Compute.Dest = KeyTemp[Id];
        Compute.IsSourceAssign = false;
        CopyI.Op = Opcode::Copy;
        CopyI.Ops = {KeyTemp[Id]};
        CopyI.Dest = OldDest;
        BB->Insts.insert(It, std::move(Compute));
      }
    }

    // Replace the redundant occurrences.
    for (auto &[I, Id] : Redundant) {
      I->Op = Opcode::Copy;
      I->Ops = {KeyTemp[Id]};
    }
    // Inserts/rewrites instructions within existing blocks only.
    return {PreservedAnalyses::cfgShape(), true};
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createGlobalCSEPass() {
  return std::make_unique<GlobalCSE>();
}
