//===- opt/Pipeline.cpp - cmcc-like pass pipeline ---------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "ir/Verifier.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace sldb;

bool Pass::run(IRFunction &F, IRModule &M) {
  AnalysisManager AM(*M.Info);
  return run(F, M, AM).Changed;
}

namespace {

/// One pipeline slot.  Slots sharing a Cluster id form a
/// propagate→simplify group the fixpoint driver may iterate.
struct Slot {
  std::unique_ptr<Pass> P;
  int Cluster = -1;
};

/// Builds the pipeline in execution order.
std::vector<Slot> buildPipeline(const OptOptions &O) {
  std::vector<Slot> P;
  auto Add = [&](bool Enabled, std::unique_ptr<Pass> Pass, int Cluster = -1) {
    if (Enabled)
      P.push_back({std::move(Pass), Cluster});
  };

  // Inlining first: it rewrites call sites into straight-line code, so
  // everything downstream (including the SSA bracket) sees the flattened
  // function.
  Add(O.Inline, createInlinePass());

  // Cleanup + early simplification (cluster 0: the first
  // propagate→simplify group).
  Add(O.BranchOpt, createBranchOptPass());
  Add(O.ConstProp, createLocalSimplifyPass(), 0);
  Add(O.ConstProp, createConstantPropagationPass(), 0);
  Add(O.ConstProp, createLocalSimplifyPass(), 0);
  Add(O.CopyProp, createCopyPropagationPass(), 0);
  Add(O.BranchOpt, createBranchOptPass());

  // Loop restructuring first: peeling exposes redundancy to PRE.
  Add(O.LoopPeel, createLoopPeelPass());
  Add(O.LoopUnroll, createLoopUnrollPass());

  // Redundancy removal: CSE, then the hoisting transformations.
  Add(O.CSE, createGlobalCSEPass());
  Add(O.PRE, createPartialRedundancyElimPass());
  Add(O.LICM, createLoopInvariantCodeMotionPass());
  Add(O.IVOpt, createInductionVariableOptPass());

  // Second propagation round (cluster 1) feeds dead-code elimination
  // (and builds the recovery chains of paper §2.5 / Figure 4).
  Add(O.ConstProp, createConstantPropagationPass(), 1);
  Add(O.ConstProp, createLocalSimplifyPass(), 1);
  Add(O.CopyProp, createCopyPropagationPass(), 1);

  // SSA bracket: construct, run the SSA-form passes, destruct.  Placed
  // after the propagation round (so GVN sees canonical operands) and
  // before PDE/DCE (so the copies SSA destruction leaves behind are
  // cleaned up by the existing dead-code sweep).
  const bool WantSsa = O.Ssa || O.GVN || O.SparseProp;
  Add(WantSsa, createSsaConstructPass());
  Add(O.GVN, createGVNPass());
  Add(O.SparseProp, createSparsePropPass());
  Add(WantSsa, createSsaDestructPass());

  // Sinking after hoisting (paper §4: hoisted assignments that are
  // partially dead get sunk back down), then full dead-code elimination.
  Add(O.PDE, createPartialDeadCodeElimPass());
  Add(O.DCE, createDeadCodeEliminationPass());
  Add(O.BranchOpt, createBranchOptPass());
  return P;
}

/// Caps fixpoint iteration of one cluster (safety net; the propagation
/// passes converge quickly in practice).
constexpr unsigned MaxClusterRounds = 4;

Status verifyAfterPass(IRFunction &F, IRModule &M, const char *PassName) {
  std::vector<std::string> Errors;
  if (verifyFunction(F, *M.Info, Errors))
    return Status::success();
  std::string Msg = "IR verification failed after pass '";
  Msg += PassName;
  Msg += "' on '" + F.Name + "'";
  for (const std::string &E : Errors) {
    Msg += "\n  ";
    Msg += E;
  }
  return Status::error(ErrorCode::VerifyFailure, std::move(Msg));
}

} // namespace

PipelineConfig PipelineConfig::fromEnvironment() {
  PipelineConfig C;
  const char *V = std::getenv("SLDB_VERIFY_EACH");
  if (V && *V && std::strcmp(V, "0") != 0)
    C.VerifyEach = true;
  return C;
}

Status sldb::runPipelineEx(IRModule &M, const OptOptions &Opts,
                           const PipelineConfig &Config,
                           PipelineStats *Stats) {
  using Clock = std::chrono::steady_clock;
  TraceSpan PipeSpan("runPipeline", "pipeline");
  auto Pipeline = buildPipeline(Opts);
  AnalysisManager AM(*M.Info);

  if (Stats) {
    Stats->Slots.clear();
    for (const Slot &S : Pipeline)
      Stats->Slots.push_back({S.P->name(), 0, 0, 0});
  }

  const bool Timing = Config.TimePasses && Stats;
  auto RunStart = Timing ? Clock::now() : Clock::time_point();

  Status Err;
  auto RunSlot = [&](std::size_t I, IRFunction &F) {
    auto T0 = Timing ? Clock::now() : Clock::time_point();
    TraceSpan Span(Pipeline[I].P->name(), "pass");
    Span.arg("function", F.Name);
    PassResult R = Pipeline[I].P->run(F, M, AM);
    Span.arg("changed", R.Changed ? "true" : "false");
    Stats::counter("pipeline.pass.runs").add();
    if (R.Changed)
      Stats::counter("pipeline.pass.changed").add();
    AM.invalidate(F, R.Preserved);
    if (Config.DisableAnalysisCache)
      AM.invalidateAll(F);
    if (Config.VerifyEach && Err.ok())
      Err = verifyAfterPass(F, M, Pipeline[I].P->name());
    if (Config.VerifyAnnotations && Config.AfterPass) {
      // Recompute the debug-bookkeeping findings from scratch: damage is
      // structural, so whatever is still broken after the latest pass is
      // rediscovered, and the list cannot grow without bound.  Without an
      // AfterPass observer nothing reads the intermediate findings, so
      // the per-function sweep below computes them once at the end.
      F.AnnotationFindings.clear();
      verifyFunctionAnnotations(F, *M.Info, F.AnnotationFindings);
    }
    if (Config.AfterPass)
      Config.AfterPass(F, M, AM, Pipeline[I].P->name());
    if (Stats) {
      PassSlotStats &S = Stats->Slots[I];
      ++S.Runs;
      S.Changed += R.Changed;
      if (Timing)
        S.WallMs +=
            std::chrono::duration<double, std::milli>(Clock::now() - T0)
                .count();
    }
    return R.Changed;
  };

  // Function-major order: with the fixpoint driver off, the transformed
  // module is bit-identical to the historical one-sweep pipeline.
  for (auto &F : M.Funcs) {
    std::size_t I = 0;
    while (I < Pipeline.size() && Err.ok()) {
      int Cluster = Pipeline[I].Cluster;
      if (Cluster < 0 || !Config.FixpointPropagation) {
        RunSlot(I, *F);
        ++I;
        continue;
      }
      std::size_t End = I;
      while (End < Pipeline.size() && Pipeline[End].Cluster == Cluster)
        ++End;
      bool Again = true;
      for (unsigned Round = 0;
           Again && Err.ok() && Round < MaxClusterRounds; ++Round) {
        Again = false;
        for (std::size_t K = I; K < End; ++K)
          Again |= RunSlot(K, *F);
      }
      I = End;
    }
    if (Config.VerifyAnnotations && Err.ok() && !Config.AfterPass) {
      // Final-state findings only; identical to verifying after every
      // pass since each verification starts from scratch.
      F->AnnotationFindings.clear();
      verifyFunctionAnnotations(*F, *M.Info, F->AnnotationFindings);
    }
    if (!Err.ok())
      break;
  }

  if (Stats) {
    Stats->Analyses = AM.stats();
    if (Timing)
      Stats->TotalMs =
          std::chrono::duration<double, std::milli>(Clock::now() - RunStart)
              .count();
  }
  return Err;
}

void sldb::runPipeline(IRModule &M, const OptOptions &Opts) {
  Status S = runPipelineEx(M, Opts, PipelineConfig::fromEnvironment());
  if (!S.ok()) {
    // The convenience wrapper has no error channel; Status-aware drivers
    // (sldbc, the fuzz oracle) use runPipelineEx directly.
    std::fprintf(stderr, "sldb: %s\n", S.str().c_str());
    std::abort();
  }
}

Status sldb::runPipelineInstrumented(IRModule &M, const OptOptions &Opts,
                                     std::vector<PassFiring> &Firings) {
  PipelineStats Stats;
  Status S = runPipelineEx(M, Opts, PipelineConfig::fromEnvironment(), &Stats);
  Firings.clear();
  for (const PassSlotStats &Slot : Stats.Slots)
    Firings.push_back({Slot.Name, Slot.Changed});
  return S;
}

std::vector<std::string> sldb::pipelinePassNames(const OptOptions &Opts) {
  std::vector<std::string> Names;
  for (auto &S : buildPipeline(Opts))
    Names.emplace_back(S.P->name());
  return Names;
}
