//===- opt/Pipeline.cpp - cmcc-like pass pipeline ---------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

using namespace sldb;

namespace {

/// Builds the pipeline in execution order.
std::vector<std::unique_ptr<Pass>> buildPipeline(const OptOptions &O) {
  std::vector<std::unique_ptr<Pass>> P;
  auto Add = [&](bool Enabled, std::unique_ptr<Pass> Pass) {
    if (Enabled)
      P.push_back(std::move(Pass));
  };

  // Cleanup + early simplification.
  Add(O.BranchOpt, createBranchOptPass());
  Add(O.ConstProp, createLocalSimplifyPass());
  Add(O.ConstProp, createConstantPropagationPass());
  Add(O.ConstProp, createLocalSimplifyPass());
  Add(O.CopyProp, createCopyPropagationPass());
  Add(O.BranchOpt, createBranchOptPass());

  // Loop restructuring first: peeling exposes redundancy to PRE.
  Add(O.LoopPeel, createLoopPeelPass());
  Add(O.LoopUnroll, createLoopUnrollPass());

  // Redundancy removal: CSE, then the hoisting transformations.
  Add(O.CSE, createGlobalCSEPass());
  Add(O.PRE, createPartialRedundancyElimPass());
  Add(O.LICM, createLoopInvariantCodeMotionPass());
  Add(O.IVOpt, createInductionVariableOptPass());

  // Second propagation round feeds dead-code elimination (and builds the
  // recovery chains of paper §2.5 / Figure 4).
  Add(O.ConstProp, createConstantPropagationPass());
  Add(O.ConstProp, createLocalSimplifyPass());
  Add(O.CopyProp, createCopyPropagationPass());

  // Sinking after hoisting (paper §4: hoisted assignments that are
  // partially dead get sunk back down), then full dead-code elimination.
  Add(O.PDE, createPartialDeadCodeElimPass());
  Add(O.DCE, createDeadCodeEliminationPass());
  Add(O.BranchOpt, createBranchOptPass());
  return P;
}

} // namespace

void sldb::runPipeline(IRModule &M, const OptOptions &Opts) {
  auto Pipeline = buildPipeline(Opts);
  for (auto &F : M.Funcs)
    for (auto &P : Pipeline)
      P->run(*F, M);
}

void sldb::runPipelineInstrumented(IRModule &M, const OptOptions &Opts,
                                   std::vector<PassFiring> &Firings) {
  auto Pipeline = buildPipeline(Opts);
  Firings.clear();
  for (auto &P : Pipeline)
    Firings.push_back({P->name(), 0});
  // Same function-major order as runPipeline: the transformed module is
  // bit-identical to the uninstrumented run.
  for (auto &F : M.Funcs)
    for (std::size_t I = 0; I < Pipeline.size(); ++I)
      if (Pipeline[I]->run(*F, M))
        ++Firings[I].Changed;
}

std::vector<std::string> sldb::pipelinePassNames(const OptOptions &Opts) {
  std::vector<std::string> Names;
  for (auto &P : buildPipeline(Opts))
    Names.emplace_back(P->name());
  return Names;
}
