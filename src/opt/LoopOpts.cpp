//===- opt/LoopOpts.cpp - LICM, loop peeling --------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-invariant code motion and loop peeling.
///
/// LICM hoists *temporary-computing* invariant instructions (address
/// computations, cast chains, CSE temps) to the loop preheader.  This
/// matches the paper's observation that "the cmcc optimizer hoisted mainly
/// address computations" (§4): hoisted temps never endanger source
/// variables because temporaries are invisible to the user (§2).  Source
/// assignment hoisting is PRE's job, which carries the full bookkeeping.
///
/// Loop peeling duplicates the loop body once ahead of the loop.  Control
/// flow duplication causes no data-value problems, but markers and
/// annotations must be duplicated along with the code (paper §3, "code
/// duplication").
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include <unordered_map>
#include <unordered_set>

using namespace sldb;

namespace {

//===----------------------------------------------------------------------===//
// Loop-invariant code motion
//===----------------------------------------------------------------------===//

class LoopInvariantCodeMotion : public Pass {
public:
  const char *name() const override { return "loop-invariant-code-motion"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    (void)M;
    bool Any = false;
    bool Retry = true;
    // Creating preheaders invalidates the CFG context; drop the caches
    // eagerly and restart with fresh results.
    while (Retry) {
      Retry = false;
      CFGContext &CFG = AM.getResult<CFGContext>(F);
      LoopInfo &LI = AM.getResult<LoopInfo>(F);
      for (const Loop &L : LI.loops()) {
        bool CFGChanged = false;
        BasicBlock *PH = getOrCreatePreheader(CFG, L, CFGChanged);
        if (CFGChanged) {
          AM.invalidateAll(F);
          Retry = true;
          break;
        }
        if (!PH)
          continue;
        Any |= hoistFromLoop(F, AM.getResult<AliasInfo>(F), CFG, L, PH);
      }
    }
    // Mid-run invalidation already covered any preheader creation; what
    // remains stale after hoisting is instruction-level only.
    return {Any ? PreservedAnalyses::cfgShape() : PreservedAnalyses::all(),
            Any};
  }

private:
  bool hoistFromLoop(IRFunction &F, const AliasInfo &AI,
                     const CFGContext &CFG, const Loop &L, BasicBlock *PH) {
    // Values defined inside the loop (direct or clobbered).
    auto DefinedInLoop = [&](const Value &V) {
      if (V.isConst())
        return false;
      for (unsigned B : L.Blocks)
        for (const Instr &I : CFG.block(B)->Insts) {
          if (I.Dest == V)
            return true;
          if (V.isVar() && AI.mayClobber(I, V.Id))
            return true;
        }
      return false;
    };
    // Count temp defs in the whole function (only single-def temps move).
    std::unordered_map<TempId, unsigned> TempDefs;
    for (const auto &B : F.Blocks)
      for (const Instr &I : B->Insts)
        if (I.Dest.isTemp())
          ++TempDefs[I.Dest.Id];

    bool Changed = false;
    bool Again = true;
    while (Again) {
      Again = false;
      for (unsigned B : L.Blocks) {
        BasicBlock *BB = CFG.block(B);
        for (auto It = BB->Insts.begin(); It != BB->Insts.end();) {
          Instr &I = *It;
          if (!isHoistableTemp(I, TempDefs) ||
              anyOperandDefinedInLoop(I, DefinedInLoop)) {
            ++It;
            continue;
          }
          // Move to the preheader, before its terminator.
          Instr Moved = I;
          Moved.IsHoisted = true;
          auto Pos = PH->Insts.end();
          --Pos;
          PH->Insts.insert(Pos, std::move(Moved));
          It = BB->Insts.erase(It);
          Changed = true;
          Again = true; // Chains of invariants unlock each other.
        }
      }
    }
    return Changed;
  }

  static bool isHoistableTemp(const Instr &I,
                              std::unordered_map<TempId, unsigned> &Defs) {
    if (!I.Dest.isTemp() || Defs[I.Dest.Id] != 1)
      return false;
    switch (I.Op) {
    case Opcode::AddrOf: // The paper's "address computations".
    case Opcode::Copy:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::CastItoD:
    case Opcode::CastDtoI:
      return true;
    case Opcode::Div:
    case Opcode::Rem:
      // Hoisting may speculate a trap; only with constant nonzero divisor.
      return I.Ops[1].isConstInt() && I.Ops[1].IntVal != 0;
    default:
      return isBinaryOp(I.Op);
    }
  }

  template <typename Fn>
  static bool anyOperandDefinedInLoop(const Instr &I, Fn DefinedInLoop) {
    if (I.Op == Opcode::AddrOf)
      return false; // Addresses are frame constants.
    for (const Value &V : I.Ops)
      if (DefinedInLoop(V))
        return true;
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Loop peeling
//===----------------------------------------------------------------------===//

class LoopPeel : public Pass {
public:
  const char *name() const override { return "loop-peeling"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    (void)M;
    // Peel at most one loop per invocation (keeps growth bounded and the
    // CFG context manageable).
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    LoopInfo &LI = AM.getResult<LoopInfo>(F);
    for (const Loop &L : LI.loops()) {
      if (!isSmall(CFG, L))
        continue;
      bool CFGChanged = false;
      BasicBlock *PH = getOrCreatePreheader(CFG, L, CFGChanged);
      if (CFGChanged) {
        // The preheader invalidated the block graph: drop the caches
        // and retry once against fresh results (previously this
        // reconstructed a second CFG/dominator/loop set by hand).
        BasicBlock *Header = CFG.block(L.Header);
        AM.invalidateAll(F);
        CFGContext &CFG2 = AM.getResult<CFGContext>(F);
        LoopInfo &LI2 = AM.getResult<LoopInfo>(F);
        for (const Loop &L2 : LI2.loops())
          if (CFG2.block(L2.Header) == Header) {
            bool Peeled = peel(F, CFG2, L2, PH);
            if (Peeled)
              AM.invalidateAll(F);
            return {PreservedAnalyses::all(), true};
          }
        return {PreservedAnalyses::all(), true};
      }
      if (!PH)
        continue;
      bool Peeled = peel(F, CFG, L, PH);
      if (Peeled)
        AM.invalidateAll(F);
      return {PreservedAnalyses::all(), Peeled};
    }
    return PassResult::unchanged();
  }

private:
  static bool isSmall(const CFGContext &CFG, const Loop &L) {
    unsigned Blocks = 0, Instrs = 0;
    for (unsigned B : L.Blocks) {
      ++Blocks;
      Instrs += static_cast<unsigned>(CFG.block(B)->Insts.size());
    }
    return Blocks <= 6 && Instrs <= 24;
  }

  bool peel(IRFunction &F, const CFGContext &CFG, const Loop &L,
            BasicBlock *PH) {
    BasicBlock *Header = CFG.block(L.Header);
    // Clone every loop block; annotations and markers are duplicated with
    // the instructions (paper §3: code duplication must duplicate
    // markers).
    std::unordered_map<BasicBlock *, BasicBlock *> CloneOf;
    std::vector<BasicBlock *> LoopBlocks;
    for (unsigned B : L.Blocks)
      LoopBlocks.push_back(CFG.block(B));
    for (BasicBlock *B : LoopBlocks) {
      BasicBlock *C = F.newBlock("peel");
      C->Insts = B->Insts; // Value copy: instructions + annotations.
      CloneOf[B] = C;
    }
    // Remap successors: edges within the loop go to the clones, except
    // back edges to the header, which enter the original loop.
    for (BasicBlock *B : LoopBlocks) {
      BasicBlock *C = CloneOf[B];
      Instr &T = C->Insts.back();
      for (unsigned SI = 0, E = T.numSuccs(); SI != E; ++SI) {
        BasicBlock *S = T.Succs[SI];
        if (S == Header)
          continue; // Back edge: fall into the original loop.
        auto It = CloneOf.find(S);
        if (It != CloneOf.end())
          T.Succs[SI] = It->second;
      }
    }
    PH->replaceSucc(Header, CloneOf[Header]);
    F.recomputePreds();
    return true;
  }
};

//===----------------------------------------------------------------------===//
// Loop unrolling (by replication along the back edge, exit tests kept)
//===----------------------------------------------------------------------===//

/// Unrolls by two: the loop body is cloned once, the original latches
/// jump into the clone, and the clone's latches take the back edge to the
/// original header.  Every copy keeps its exit test, so no trip-count
/// analysis is needed and the transformation is unconditionally safe.
/// Annotations and markers are duplicated with the code (paper §3).
class LoopUnroll : public Pass {
public:
  const char *name() const override { return "loop-unrolling"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    (void)M;
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    LoopInfo &LI = AM.getResult<LoopInfo>(F);
    for (const Loop &L : LI.loops()) {
      if (!isSmall(CFG, L))
        continue;
      // Skip loops containing calls: replication doubles their code for
      // little benefit (mirrors cmcc's size heuristics).
      bool HasCall = false;
      for (unsigned B : L.Blocks)
        for (const Instr &I : CFG.block(B)->Insts)
          HasCall |= I.Op == Opcode::Call;
      if (HasCall)
        continue;
      bool Unrolled = unroll(F, CFG, L);
      return {Unrolled ? PreservedAnalyses::none() : PreservedAnalyses::all(),
              Unrolled};
    }
    return PassResult::unchanged();
  }

private:
  static bool isSmall(const CFGContext &CFG, const Loop &L) {
    unsigned Blocks = 0, Instrs = 0;
    for (unsigned B : L.Blocks) {
      ++Blocks;
      Instrs += static_cast<unsigned>(CFG.block(B)->Insts.size());
    }
    return Blocks <= 5 && Instrs <= 20;
  }

  bool unroll(IRFunction &F, const CFGContext &CFG, const Loop &L) {
    BasicBlock *Header = CFG.block(L.Header);
    std::unordered_map<BasicBlock *, BasicBlock *> CloneOf;
    std::vector<BasicBlock *> LoopBlocks;
    for (unsigned B : L.Blocks)
      LoopBlocks.push_back(CFG.block(B));
    for (BasicBlock *B : LoopBlocks) {
      BasicBlock *C = F.newBlock("unroll");
      C->Insts = B->Insts; // Annotations and markers duplicate with code.
      CloneOf[B] = C;
    }
    // Clone-internal edges: in-loop targets go to clones, except the back
    // edge to the header, which returns to the *original* header.
    for (BasicBlock *B : LoopBlocks) {
      Instr &T = CloneOf[B]->Insts.back();
      for (unsigned SI = 0, E = T.numSuccs(); SI != E; ++SI) {
        BasicBlock *S = T.Succs[SI];
        if (S == Header)
          continue;
        auto It = CloneOf.find(S);
        if (It != CloneOf.end())
          T.Succs[SI] = It->second;
      }
    }
    // Original latches now enter the clone instead of looping back.
    for (unsigned LatchIdx : L.Latches)
      CFG.block(LatchIdx)->replaceSucc(Header, CloneOf[Header]);
    F.recomputePreds();
    return true;
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createLoopInvariantCodeMotionPass() {
  return std::make_unique<LoopInvariantCodeMotion>();
}

std::unique_ptr<Pass> sldb::createLoopPeelPass() {
  return std::make_unique<LoopPeel>();
}

std::unique_ptr<Pass> sldb::createLoopUnrollPass() {
  return std::make_unique<LoopUnroll>();
}
