//===- opt/GVN.cpp - Dominator-scoped global value numbering ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value numbering over the SSA tier: a preorder walk of the dominator
/// tree with a scoped expression table.  A pure computation whose
/// destination is a single-def temp and whose operands are SSA-stable —
/// constants, single-def temps, or promotable variables (after SSA
/// construction those reads are version 0, the entry value on every
/// path) — is redundant when a dominating occurrence computed the same
/// expression; it is rewritten to a Copy of the dominating destination.
/// Rewriting in place (rather than erasing) means no use list, recovery
/// value, or strength-reduction record needs surgery: the redundant temp
/// keeps its definition, now a copy, and sparse propagation or dead-code
/// elimination cleans up behind.  Debug annotations stay untouched: only
/// temp-defining computations are rewritten, never variable stores or
/// markers, so the non-invasive model of paper §3 holds.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include <map>
#include <vector>

using namespace sldb;

namespace {

struct ExprKey {
  Opcode Op;
  IRType Ty;
  Value A, B; ///< B.isNone() for unary.

  bool operator<(const ExprKey &RHS) const {
    auto Tuple = [](const ExprKey &K) {
      auto ValKey = [](const Value &V) {
        return std::tuple(static_cast<int>(V.K), V.Id, V.IntVal, V.DblVal);
      };
      return std::tuple(static_cast<int>(K.Op), static_cast<int>(K.Ty),
                        ValKey(K.A), ValKey(K.B));
    };
    return Tuple(*this) < Tuple(RHS);
  }
};

class GVN : public Pass {
public:
  const char *name() const override { return "gvn"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    DomFrontiers &DF = AM.getResult<DomFrontiers>(F);
    SsaDefUse &DU = AM.getResult<SsaDefUse>(F);
    const ProgramInfo &Info = *M.Info;

    // An operand whose value is fixed over the whole dominated region:
    // constant, single-def temp (defined before any use in well-formed
    // IR), or a renamed variable's version-0 read (entry value).
    auto StableOperand = [&](const Value &V) {
      if (V.isConst())
        return true;
      if (V.isTemp())
        return DU.singleDef(V.Id);
      if (V.isVar())
        return Info.var(V.Id).isPromotable();
      return false;
    };

    auto KeyOf = [&](const Instr &I, ExprKey &Key) {
      if (!I.Dest.isTemp() || !DU.singleDef(I.Dest.Id))
        return false;
      if (isBinaryOp(I.Op)) {
        if (!StableOperand(I.Ops[0]) || !StableOperand(I.Ops[1]))
          return false;
        if (I.Op == Opcode::Div || I.Op == Opcode::Rem) {
          // Never re-order potential traps; only number with a constant
          // nonzero divisor (same restriction as GlobalCSE).
          if (!(I.Ops[1].isConstInt() && I.Ops[1].IntVal != 0))
            return false;
        }
        Key = {I.Op, I.Ty, I.Ops[0], I.Ops[1]};
        return true;
      }
      if (I.Op == Opcode::Neg || I.Op == Opcode::Not ||
          I.Op == Opcode::CastItoD || I.Op == Opcode::CastDtoI) {
        if (!StableOperand(I.Ops[0]))
          return false;
        Key = {I.Op, I.Ty, I.Ops[0], Value::none()};
        return true;
      }
      return false;
    };

    // Scoped hash: a std::map plus an undo log unwound on dom-tree exit.
    std::map<ExprKey, Value> Table;
    struct UndoEntry {
      ExprKey Key;
      Value Old;
      bool HadOld;
    };
    std::vector<UndoEntry> Undo;

    struct Frame {
      unsigned B;
      unsigned Child = 0;
      std::size_t UndoMark;
    };
    std::vector<Frame> Stack;
    Stack.push_back({0, 0, 0});
    bool Changed = false;

    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      if (Top.Child == 0) {
        Top.UndoMark = Undo.size();
        for (Instr &I : CFG.block(Top.B)->Insts) {
          ExprKey Key;
          if (!KeyOf(I, Key))
            continue;
          auto It = Table.find(Key);
          if (It != Table.end()) {
            I.Op = Opcode::Copy;
            I.Ops.clear();
            I.Ops.push_back(It->second);
            Changed = true;
            continue;
          }
          Undo.push_back({Key, Value::none(), false});
          Table.emplace(Key, I.Dest);
        }
      }
      const std::vector<unsigned> &Kids = DF.domChildren(Top.B);
      if (Top.Child < Kids.size()) {
        unsigned Next = Kids[Top.Child++];
        Stack.push_back({Next, 0, 0});
        continue;
      }
      while (Undo.size() > Top.UndoMark) {
        UndoEntry &U = Undo.back();
        if (U.HadOld)
          Table[U.Key] = U.Old;
        else
          Table.erase(U.Key);
        Undo.pop_back();
      }
      Stack.pop_back();
    }

    if (!Changed)
      return PassResult::unchanged();
    // Rewrites computations to copies in place; the block graph is
    // untouched.
    return {PreservedAnalyses::cfgShape(), true};
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createGVNPass() {
  return std::make_unique<GVN>();
}
