//===- opt/DeadCodeElimination.cpp - Dead assignment elimination -*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dead assignment elimination with the paper's §3 bookkeeping:
///
///  * deleting a *source-level* assignment to V replaces it with a
///    DeadMarker(V, stmt) pseudo-instruction — the gen site of the
///    debugger's dead-reach analysis (paper §2.4);
///  * if the deleted assignment's right-hand side survives as a constant,
///    variable or temporary, it is attached to the marker as a *recovery*
///    value: the debugger can reconstruct V's expected value from it
///    (paper §2.5, Figure 4);
///  * deleting a compiler-inserted hoisted/sunk copy leaves no marker (the
///    source assignment it duplicates is tracked elsewhere);
///  * dead compiler temporaries vanish silently (invisible to the user).
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

using namespace sldb;

/// See Pass.h.  The unsoundness this repairs was found by the
/// differential fuzzer: `v1 = -7; v1 = v1; v1 = 6;` turns the self-copy
/// into an avail marker (PRE), then DCE eliminates the initializer that
/// provided the marker's value — leaving a certificate for a
/// never-written location.
void sldb::demoteUnsoundAvailMarkers(CFGContext &CFG, unsigned Block,
                                     InstrList::iterator Start,
                                     VarId V) {
  auto Scan = [&](BasicBlock *BB, InstrList::iterator It) {
    for (; It != BB->Insts.end(); ++It) {
      if (It->Op == Opcode::AvailMarker && It->MarkVar == V) {
        It->Op = Opcode::DeadMarker;
        It->HoistKey = InvalidHoistKey;
        It->Recovery = Value();
        It->RecoveryScale = 1;
        It->RecoveryIsIV = false;
      } else if (!It->isMark() && It->destVar() == V) {
        return true; // a real assignment to V restores the certificate
      }
    }
    return false;
  };

  std::vector<bool> Seen(CFG.numBlocks(), false);
  std::vector<unsigned> Work;
  if (!Scan(CFG.block(Block), Start))
    for (unsigned S : CFG.succs(Block))
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  while (!Work.empty()) {
    unsigned B = Work.back();
    Work.pop_back();
    BasicBlock *BB = CFG.block(B);
    if (!Scan(BB, BB->Insts.begin()))
      for (unsigned S : CFG.succs(B))
        if (!Seen[S]) {
          Seen[S] = true;
          Work.push_back(S);
        }
  }
}

namespace {

/// Eliminating a dead store can also take out the def of a temporary an
/// earlier round recorded as some marker's recovery value — liveness
/// deliberately does not treat marker recoveries as uses, so the debug
/// bookkeeping never constrains the optimizer (the paper's non-invasive
/// rule).  A recovery naming an undefined temporary would lower to a
/// read of a register nothing writes; drop it so the marker degrades to
/// plain "dead, value unknown" — conservative, never wrong.
void clearDanglingRecoveries(IRFunction &F) {
  std::vector<bool> Defined(F.NextTemp, false);
  for (const BasicBlock *BB : F.Blocks)
    for (const Instr &I : BB->Insts)
      if (I.Dest.isTemp() && I.Dest.Id < F.NextTemp)
        Defined[I.Dest.Id] = true;
  for (BasicBlock *BB : F.Blocks)
    for (Instr &I : BB->Insts)
      if (I.Op == Opcode::DeadMarker && I.Recovery.isTemp() &&
          (I.Recovery.Id >= F.NextTemp || !Defined[I.Recovery.Id])) {
        I.Recovery = Value();
        I.RecoveryScale = 1;
        I.RecoveryIsIV = false;
      }
}

class DeadCodeElimination : public Pass {
public:
  const char *name() const override { return "dead-assignment-elimination"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    bool Any = false;
    // Deleting one assignment can kill the uses feeding another; iterate
    // to a fixed point.  Each round erases instructions in place (never
    // terminators), so the block graph — and with it the CFG-shape
    // caches — survives; only the instruction-level results go stale.
    while (runOnce(F, M, AM)) {
      Any = true;
      AM.invalidate(F, PreservedAnalyses::cfgShape());
    }
    if (Any)
      clearDanglingRecoveries(F);
    return {Any ? PreservedAnalyses::cfgShape() : PreservedAnalyses::all(),
            Any};
  }

private:
  bool runOnce(IRFunction &F, IRModule &M, AnalysisManager &AM) {
    (void)M;
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    ValueIndex &VI = AM.getResult<ValueIndex>(F);
    Liveness &LV = AM.getResult<Liveness>(F);
    bool Changed = false;

    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BasicBlock *BB = CFG.block(B);
      BitVector Live = LV.liveOut(B);
      // Backward walk so `Live` is the set after each instruction.
      for (auto It = BB->Insts.end(); It != BB->Insts.begin();) {
        --It;
        Instr &I = *It;
        bool Dead = false;
        unsigned DestIdx = VI.valueIndex(I.Dest);
        if (DestIdx != ~0u && !I.hasSideEffects() && !Live.test(DestIdx))
          Dead = true;

        if (!Dead) {
          LV.transfer(I, Live);
          continue;
        }

        Changed = true;
        VarId ElimVar = I.destVar();
        if (I.Dest.isVar() && !I.IsHoisted && !I.IsSunk) {
          // A real source assignment dies: leave a dead marker with a
          // recovery value when the RHS is still observable.
          Instr Marker;
          Marker.Op = Opcode::DeadMarker;
          Marker.MarkVar = I.Dest.Id;
          Marker.MarkStmt = I.Stmt;
          Marker.Stmt = I.Stmt;
          if (I.Op == Opcode::Copy &&
              (I.Ops[0].isConst() || I.Ops[0].isTemp() || I.Ops[0].isVar())) {
            Marker.Recovery = I.Ops[0];
          } else {
            // Strength-reduced induction variable: recover the expected
            // value from the SR temporary (paper §2.5).
            for (const IRFunction::SRRecord &SR : F.SRRecords)
              if (SR.V == I.Dest.Id) {
                Marker.Recovery = SR.Temp;
                Marker.RecoveryScale = SR.Scale;
                Marker.RecoveryIsIV = true;
                break;
              }
          }
          I = std::move(Marker);
          // The marker is not a def; liveness transfer is a no-op for it.
          if (ElimVar != InvalidVar)
            demoteUnsoundAvailMarkers(CFG, B, std::next(It), ElimVar);
        } else {
          // Temps and compiler-inserted copies vanish without a trace.
          It = BB->Insts.erase(It);
          if (ElimVar != InvalidVar)
            demoteUnsoundAvailMarkers(CFG, B, It, ElimVar);
        }
      }
    }
    return Changed;
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createDeadCodeEliminationPass() {
  return std::make_unique<DeadCodeElimination>();
}
