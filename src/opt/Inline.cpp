//===- opt/Inline.cpp - Leaf function inlining ------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative leaf-function inlining, the SSA tier's interprocedural
/// satellite.  A call to a small leaf callee (no outgoing calls except
/// builtins) is replaced by a clone of the callee's body: callee locals
/// and temps become fresh caller temps, arguments arrive through copies,
/// and every return funnels into a continuation block that completes the
/// original call's destination.
///
/// Debug bookkeeping is resolved the blunt, sound way: at the source
/// level the whole callee executes "inside" the call statement, so every
/// cloned instruction carries the call site's StmtId and no hoist/sink
/// annotation, and markers for callee locals are dropped (those
/// variables are not in scope at any caller statement, so no classifier
/// query ever mentions them).  What cannot be dropped soundly forces a
/// bail-out instead: a callee marker naming a *global* records an
/// eliminated assignment the caller's debug analyses would otherwise
/// never see, so such callees are not inlined at all.  Inlining runs as
/// the first pipeline slot, and levels that enable it are excluded from
/// the lockstep judgement (Levels::judgeable) the way the loop
/// restructurers are.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include <unordered_map>
#include <vector>

using namespace sldb;

namespace {

/// Callees above this size are not worth the code growth.
constexpr unsigned MaxCalleeInstrs = 48;
/// At most this many call sites are expanded per caller per run.
constexpr unsigned MaxInlinesPerFunction = 8;

/// Returns the module's function with id \p Id, or null.
IRFunction *findFunction(IRModule &M, FuncId Id) {
  for (IRFunction *F : M.Funcs)
    if (F->Id == Id)
      return F;
  return nullptr;
}

/// True when \p Callee can be cloned into a caller without losing any
/// debug soundness (see file comment).
bool isInlinable(const IRFunction &Callee, const ProgramInfo &Info) {
  if (Callee.Blocks.empty())
    return false;
  unsigned Size = 0;
  for (const BasicBlock *B : Callee.Blocks)
    for (const Instr &I : B->Insts) {
      ++Size;
      if (I.Op == Opcode::Call && I.Callee != InvalidFunc)
        return false; // Not a leaf.
      if (I.Op == Opcode::Phi)
        return false; // Mid-bracket body; never expected here.
      if (I.isMark() && I.MarkVar != InvalidVar &&
          Info.var(I.MarkVar).Storage == StorageKind::Global)
        return false; // Eliminated global assignment: must stay visible.
    }
  if (Size > MaxCalleeInstrs)
    return false;
  // Every local (params included) must be representable as a caller
  // temp: scalar, not address-taken.
  if (Callee.Id >= Info.Funcs.size())
    return false;
  for (VarId V : Info.func(Callee.Id).Locals)
    if (!Info.var(V).isPromotable())
      return false;
  return true;
}

class Inline : public Pass {
public:
  const char *name() const override { return "inline"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    const ProgramInfo &Info = *M.Info;
    bool Changed = false;
    for (unsigned N = 0; N < MaxInlinesPerFunction; ++N) {
      if (!inlineOneSite(F, M, Info))
        break;
      Changed = true;
    }
    if (!Changed)
      return PassResult::unchanged();
    F.recomputePreds();
    AM.invalidateAll(F);
    return {PreservedAnalyses::none(), true};
  }

private:
  /// Finds the first inlinable call site in layout order and expands it.
  bool inlineOneSite(IRFunction &F, IRModule &M, const ProgramInfo &Info) {
    for (std::size_t BI = 0; BI < F.Blocks.size(); ++BI) {
      BasicBlock *B = F.Blocks[BI];
      for (auto It = B->Insts.begin(); It != B->Insts.end(); ++It) {
        const Instr &I = *It;
        if (I.Op != Opcode::Call || I.Callee == InvalidFunc)
          continue;
        IRFunction *Callee = findFunction(M, I.Callee);
        if (!Callee || Callee == &F || !isInlinable(*Callee, Info))
          continue;
        if (Callee->Params.size() != I.Ops.size())
          continue;
        expand(F, B, It, *Callee, Info);
        return true;
      }
    }
    return false;
  }

  void expand(IRFunction &F, BasicBlock *B, InstrList::iterator CallIt,
              IRFunction &Callee, const ProgramInfo &Info) {
    const Instr CallI = *CallIt;
    const StmtId CallStmt = CallI.Stmt;

    // The continuation receives everything after the call, including the
    // terminator.
    BasicBlock *ContB = F.newBlock("inl.cont");
    {
      auto Next = CallIt;
      ++Next;
      while (Next != B->Insts.end()) {
        ContB->Insts.push_back(*Next);
        Next = B->Insts.erase(Next);
      }
    }

    // Fresh caller temps for every callee local (all promotable, checked
    // by isInlinable) and lazily for every callee temp.
    std::unordered_map<VarId, Value> VarMap;
    for (VarId V : Info.func(Callee.Id).Locals)
      VarMap.emplace(V, F.newTemp(irTypeFor(Info.var(V).Ty)));
    std::vector<Value> TempMap(Callee.NextTemp, Value::none());
    auto Remap = [&](Value &V) {
      if (V.isTemp()) {
        if (TempMap[V.Id].isNone())
          TempMap[V.Id] = F.newTemp(V.Ty);
        V = TempMap[V.Id];
      } else if (V.isVar()) {
        auto MIt = VarMap.find(V.Id);
        if (MIt != VarMap.end())
          V = MIt->second;
      }
    };

    // Argument copies, in place of the call.
    for (std::size_t A = 0; A < Callee.Params.size(); ++A) {
      Instr Copy;
      Copy.Op = Opcode::Copy;
      Value Arg = CallI.Ops[A];
      Copy.Ty = Arg.Ty;
      Copy.Dest = VarMap.at(Callee.Params[A]);
      Copy.Ops.push_back(Arg);
      Copy.Stmt = CallStmt;
      B->Insts.insert(CallIt, std::move(Copy));
    }

    const Value RetT = Callee.RetTy != IRType::Void
                           ? F.newTemp(Callee.RetTy)
                           : Value::none();

    // Clone the callee body.
    std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
    for (const BasicBlock *CB : Callee.Blocks)
      BlockMap.emplace(CB, F.newBlock("inl"));
    for (const BasicBlock *CB : Callee.Blocks) {
      BasicBlock *NB = BlockMap.at(CB);
      for (const Instr &I : CB->Insts) {
        if (I.isMark())
          continue; // Callee-local markers; globals force a bail-out.
        if (I.Op == Opcode::Ret) {
          if (!RetT.isNone() && !I.Ops.empty()) {
            Instr RC;
            RC.Op = Opcode::Copy;
            RC.Ty = Callee.RetTy;
            RC.Dest = RetT;
            Value Src = I.Ops[0];
            Remap(Src);
            RC.Ops.push_back(Src);
            RC.Stmt = CallStmt;
            NB->Insts.push_back(std::move(RC));
          }
          Instr Jump;
          Jump.Op = Opcode::Br;
          Jump.Succs[0] = ContB;
          NB->Insts.push_back(std::move(Jump));
          continue;
        }
        Instr C = I;
        for (Value &Op : C.Ops)
          Remap(Op);
        if (!C.Dest.isNone())
          Remap(C.Dest);
        for (unsigned S = 0, E = C.numSuccs(); S != E; ++S)
          C.Succs[S] = BlockMap.at(C.Succs[S]);
        // Everything the callee does happens "at" the call statement;
        // hoist/sink provenance and keys are meaningless across the
        // function boundary.  A store that still targets a variable
        // (a global) remains a source assignment of that variable,
        // completed by this statement.
        C.Stmt = CallStmt;
        C.IsSourceAssign = I.IsSourceAssign && C.Dest.isVar();
        C.IsHoisted = C.IsSunk = false;
        C.HoistKey = InvalidHoistKey;
        NB->Insts.push_back(std::move(C));
      }
    }

    // Replace the call: jump into the clone, complete the destination in
    // the continuation.
    B->Insts.erase(CallIt);
    {
      Instr Jump;
      Jump.Op = Opcode::Br;
      Jump.Succs[0] = BlockMap.at(Callee.entry());
      B->Insts.push_back(std::move(Jump));
    }
    if (!CallI.Dest.isNone() && !RetT.isNone()) {
      Instr Done;
      Done.Op = Opcode::Copy;
      Done.Ty = CallI.Ty;
      Done.Dest = CallI.Dest;
      Done.Ops.push_back(RetT);
      Done.Stmt = CallI.Stmt;
      Done.IsSourceAssign = CallI.IsSourceAssign;
      Done.IsHoisted = CallI.IsHoisted;
      Done.IsSunk = CallI.IsSunk;
      Done.HoistKey = CallI.HoistKey;
      ContB->Insts.insert(ContB->Insts.begin(), std::move(Done));
    }
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createInlinePass() {
  return std::make_unique<Inline>();
}
