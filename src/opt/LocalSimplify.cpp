//===- opt/LocalSimplify.cpp - Folding and algebraic cleanup ---*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant folding and algebraic simplification.  These rewrites never
/// move or eliminate assignments to source variables — the folded
/// instruction stays in place with its annotations — so they need no debug
/// bookkeeping (paper §2: "many scalar optimizations ... do not directly
/// affect assignments to source variables").
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "support/Casting.h"

using namespace sldb;

namespace {

/// Folds the integer operation \p Op over \p A, \p B; returns false if the
/// fold is not possible (division by zero stays as a runtime trap).
bool foldInt(Opcode Op, std::int64_t A, std::int64_t B, std::int64_t &Out) {
  switch (Op) {
  case Opcode::Add:
    Out = A + B;
    return true;
  case Opcode::Sub:
    Out = A - B;
    return true;
  case Opcode::Mul:
    Out = A * B;
    return true;
  case Opcode::Div:
    if (B == 0)
      return false;
    Out = A / B;
    return true;
  case Opcode::Rem:
    if (B == 0)
      return false;
    Out = A % B;
    return true;
  case Opcode::And:
    Out = A & B;
    return true;
  case Opcode::Or:
    Out = A | B;
    return true;
  case Opcode::Xor:
    Out = A ^ B;
    return true;
  case Opcode::Shl:
    Out = A << (B & 63);
    return true;
  case Opcode::Shr:
    Out = A >> (B & 63);
    return true;
  case Opcode::CmpEQ:
    Out = A == B;
    return true;
  case Opcode::CmpNE:
    Out = A != B;
    return true;
  case Opcode::CmpLT:
    Out = A < B;
    return true;
  case Opcode::CmpLE:
    Out = A <= B;
    return true;
  case Opcode::CmpGT:
    Out = A > B;
    return true;
  case Opcode::CmpGE:
    Out = A >= B;
    return true;
  default:
    return false;
  }
}

bool foldDouble(Opcode Op, double A, double B, double &DOut,
                std::int64_t &IOut, bool &IsCmp) {
  IsCmp = false;
  switch (Op) {
  case Opcode::Add:
    DOut = A + B;
    return true;
  case Opcode::Sub:
    DOut = A - B;
    return true;
  case Opcode::Mul:
    DOut = A * B;
    return true;
  case Opcode::Div:
    DOut = B == 0 ? 0 : A / B;
    return true;
  case Opcode::CmpEQ:
    IOut = A == B;
    IsCmp = true;
    return true;
  case Opcode::CmpNE:
    IOut = A != B;
    IsCmp = true;
    return true;
  case Opcode::CmpLT:
    IOut = A < B;
    IsCmp = true;
    return true;
  case Opcode::CmpLE:
    IOut = A <= B;
    IsCmp = true;
    return true;
  case Opcode::CmpGT:
    IOut = A > B;
    IsCmp = true;
    return true;
  case Opcode::CmpGE:
    IOut = A >= B;
    IsCmp = true;
    return true;
  default:
    return false;
  }
}

/// Rewrites \p I into a Copy of \p V, preserving annotations.
void becomeCopy(Instr &I, Value V) {
  I.Op = Opcode::Copy;
  I.Ops = {V};
}

class LocalSimplify : public Pass {
public:
  const char *name() const override {
    return "constant-propagation-and-folding(local)";
  }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    (void)M;
    (void)AM; // Purely local; needs no analyses.
    bool Changed = false;
    for (auto &B : F.Blocks)
      for (Instr &I : B->Insts)
        Changed |= simplify(I);
    return {Changed ? PreservedAnalyses::cfgShape() : PreservedAnalyses::all(),
            Changed};
  }

private:
  bool simplify(Instr &I) {
    // Binary constant folding.
    if (isBinaryOp(I.Op) && I.Ops.size() == 2) {
      const Value &A = I.Ops[0], &B = I.Ops[1];
      if (A.isConstInt() && B.isConstInt()) {
        std::int64_t Out;
        if (foldInt(I.Op, A.IntVal, B.IntVal, Out)) {
          becomeCopy(I, Value::constInt(Out));
          return true;
        }
        return false;
      }
      if (A.isConstDouble() && B.isConstDouble()) {
        double DOut;
        std::int64_t IOut;
        bool IsCmp;
        if (foldDouble(I.Op, A.DblVal, B.DblVal, DOut, IOut, IsCmp)) {
          becomeCopy(I, IsCmp ? Value::constInt(IOut)
                              : Value::constDouble(DOut));
          return true;
        }
        return false;
      }
      return simplifyAlgebraic(I);
    }
    // Unary folding.
    if (I.Op == Opcode::Neg && I.Ops[0].isConstInt()) {
      becomeCopy(I, Value::constInt(-I.Ops[0].IntVal));
      return true;
    }
    if (I.Op == Opcode::Neg && I.Ops[0].isConstDouble()) {
      becomeCopy(I, Value::constDouble(-I.Ops[0].DblVal));
      return true;
    }
    if (I.Op == Opcode::Not && I.Ops[0].isConstInt()) {
      becomeCopy(I, Value::constInt(~I.Ops[0].IntVal));
      return true;
    }
    if (I.Op == Opcode::CastItoD && I.Ops[0].isConstInt()) {
      becomeCopy(I, Value::constDouble(static_cast<double>(I.Ops[0].IntVal)));
      return true;
    }
    if (I.Op == Opcode::CastDtoI && I.Ops[0].isConstDouble()) {
      becomeCopy(I,
                 Value::constInt(static_cast<std::int64_t>(I.Ops[0].DblVal)));
      return true;
    }
    return false;
  }

  /// Identity/annihilator rewrites on one-constant operands.
  bool simplifyAlgebraic(Instr &I) {
    Value &A = I.Ops[0];
    Value &B = I.Ops[1];
    bool IsInt = I.Ty == IRType::Int || I.Ty == IRType::Ptr;
    if (!IsInt)
      return false; // Double identities interact with NaN; leave alone.

    auto IsZero = [](const Value &V) {
      return V.isConstInt() && V.IntVal == 0;
    };
    auto IsOne = [](const Value &V) {
      return V.isConstInt() && V.IntVal == 1;
    };

    switch (I.Op) {
    case Opcode::Add:
      if (IsZero(B)) {
        becomeCopy(I, A);
        return true;
      }
      if (IsZero(A)) {
        becomeCopy(I, B);
        return true;
      }
      return false;
    case Opcode::Sub:
      if (IsZero(B)) {
        becomeCopy(I, A);
        return true;
      }
      return false;
    case Opcode::Mul:
      if (IsOne(B)) {
        becomeCopy(I, A);
        return true;
      }
      if (IsOne(A)) {
        becomeCopy(I, B);
        return true;
      }
      if ((IsZero(A) || IsZero(B)) && I.Ty == IRType::Int) {
        becomeCopy(I, Value::constInt(0));
        return true;
      }
      return false;
    case Opcode::Div:
      if (IsOne(B)) {
        becomeCopy(I, A);
        return true;
      }
      return false;
    case Opcode::Shl:
    case Opcode::Shr:
      if (IsZero(B)) {
        becomeCopy(I, A);
        return true;
      }
      return false;
    case Opcode::And:
      if (IsZero(A) || IsZero(B)) {
        becomeCopy(I, Value::constInt(0));
        return true;
      }
      return false;
    case Opcode::Or:
    case Opcode::Xor:
      if (IsZero(B)) {
        becomeCopy(I, A);
        return true;
      }
      if (IsZero(A)) {
        becomeCopy(I, B);
        return true;
      }
      return false;
    default:
      return false;
    }
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createLocalSimplifyPass() {
  return std::make_unique<LocalSimplify>();
}
