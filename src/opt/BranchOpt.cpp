//===- opt/BranchOpt.cpp - Branch optimizations ----------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch optimizations: constant-condition folding, unreachable-block
/// removal, straight-line block merging, and empty-block elimination
/// (branch chaining).  Bookkeeping per paper §3:
///
///  * unreachable code never executes in the original program either, so
///    its deletion needs no markers;
///  * when an otherwise-empty block is deleted, any debug markers it holds
///    are transferred to its successor.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

using namespace sldb;

namespace {

class BranchOpt : public Pass {
public:
  const char *name() const override { return "branch-optimizations"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    (void)M;
    (void)AM; // Pure CFG surgery; needs no analyses.
    bool Any = false;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      Changed |= foldConstantBranches(F);
      Changed |= F.removeUnreachable();
      Changed |= skipEmptyBlocks(F);
      Changed |= mergeStraightLine(F);
      Any |= Changed;
    }
    // Restructures the block graph: nothing survives a change.
    return {Any ? PreservedAnalyses::none() : PreservedAnalyses::all(), Any};
  }

private:
  bool foldConstantBranches(IRFunction &F) {
    bool Changed = false;
    for (auto &B : F.Blocks) {
      if (!B->hasTerm())
        continue;
      Instr &T = B->Insts.back();
      if (T.Op != Opcode::CondBr || !T.Ops[0].isConstInt())
        continue;
      BasicBlock *Target = T.Ops[0].IntVal != 0 ? T.Succs[0] : T.Succs[1];
      T.Op = Opcode::Br;
      T.Ops.clear();
      T.Succs[0] = Target;
      T.Succs[1] = nullptr;
      Changed = true;
    }
    if (Changed)
      F.recomputePreds();
    return Changed;
  }

  /// True if the block contains only a Br (markers allowed).
  static bool isForwardingBlock(const BasicBlock &B) {
    if (!B.hasTerm() || B.Insts.back().Op != Opcode::Br)
      return false;
    for (const Instr &I : B.Insts)
      if (!I.isTerm() && !I.isMark())
        return false;
    return true;
  }

  bool skipEmptyBlocks(IRFunction &F) {
    bool Changed = false;
    F.recomputePreds();
    for (auto &B : F.Blocks) {
      if (B == F.entry() || !isForwardingBlock(*B))
        continue;
      BasicBlock *Succ = B->Insts.back().Succs[0];
      if (Succ == B)
        continue; // Self loop.
      // Move any markers into the successor's front (paper §3: debugging
      // information of a deleted block transfers to its successor).
      bool HasMarkers = false;
      for (const Instr &I : B->Insts)
        HasMarkers |= I.isMark();
      if (HasMarkers) {
        // Only safe if the successor's other predecessors would not be
        // polluted by the marker: require the successor to have this
        // block as its only predecessor.
        if (Succ->Preds.size() != 1)
          continue;
        auto InsertAt = Succ->Insts.begin();
        for (Instr &I : B->Insts)
          if (I.isMark())
            Succ->Insts.insert(InsertAt, I);
      }
      // Retarget predecessors.
      if (B->Preds.empty())
        continue;
      for (BasicBlock *P : std::vector<BasicBlock *>(B->Preds))
        P->replaceSucc(B, Succ);
      B->Insts.clear();
      Instr Jump;
      Jump.Op = Opcode::Br;
      Jump.Succs[0] = Succ;
      B->Insts.push_back(Jump);
      F.recomputePreds();
      Changed = true;
    }
    if (Changed) {
      F.removeUnreachable();
      F.recomputePreds();
    }
    return Changed;
  }

  bool mergeStraightLine(IRFunction &F) {
    bool Changed = false;
    F.recomputePreds();
    for (auto &B : F.Blocks) {
      for (;;) {
        if (!B->hasTerm() || B->Insts.back().Op != Opcode::Br)
          break;
        BasicBlock *Succ = B->Insts.back().Succs[0];
        if (Succ == B || Succ->Preds.size() != 1 ||
            Succ == F.entry())
          break;
        // Splice: drop B's Br, append Succ's instructions.
        B->Insts.pop_back();
        B->Insts.splice(B->Insts.end(), Succ->Insts);
        // Succ becomes an empty forwarding shell; make it unreachable.
        Instr Jump;
        Jump.Op = Opcode::Br;
        Jump.Succs[0] = B; // Arbitrary; removed as unreachable.
        Succ->Insts.push_back(Jump);
        F.recomputePreds();
        Changed = true;
      }
    }
    if (Changed) {
      F.removeUnreachable();
      F.recomputePreds();
    }
    return Changed;
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createBranchOptPass() {
  return std::make_unique<BranchOpt>();
}
