//===- opt/InductionVariableOpt.cpp - SR, LFTR, IV elimination -*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Induction-variable optimizations: operator strength reduction of
/// `j = i * k` (k a loop-invariant constant) into an additive temporary,
/// linear function test replacement of loop-exit comparisons on `i`, and
/// (indirectly, via dead-code elimination) induction-variable elimination.
///
/// Debug bookkeeping: a strength-reduction record `value(i) ==
/// value(s) / k` is registered with the function.  If the source-level IV
/// `i` later dies (all uses replaced) and DCE eliminates its update, the
/// dead marker carries the affine recovery so the debugger can
/// reconstruct i from the strength-reduced temporary (paper §2.5:
/// "A similar approach is used to recover the value of a source-level
/// induction variable that is replaced by a strength-reduced
/// expression").
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

using namespace sldb;

namespace {

/// A recognized basic induction variable: one in-loop update
/// `IV = IV + Step` (Step constant, possibly negative via Sub).
struct BasicIV {
  Value IV;            ///< Var or temp.
  Instr *Update = nullptr;
  unsigned UpdateBlock = 0;
  std::int64_t Step = 0;
};

class InductionVariableOpt : public Pass {
public:
  const char *name() const override {
    return "strength-reduction-and-ivopt";
  }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    bool Any = false;
    bool Retry = true;
    while (Retry) {
      Retry = false;
      CFGContext &CFG = AM.getResult<CFGContext>(F);
      Dominators &Dom = AM.getResult<Dominators>(F);
      LoopInfo &LI = AM.getResult<LoopInfo>(F);
      for (const Loop &L : LI.loops()) {
        bool CFGChanged = false;
        BasicBlock *PH = getOrCreatePreheader(CFG, L, CFGChanged);
        if (CFGChanged) {
          AM.invalidateAll(F);
          Retry = true;
          break;
        }
        if (!PH)
          continue;
        if (runOnLoop(F, *M.Info, AM.getResult<AliasInfo>(F), CFG, Dom, L,
                      PH)) {
          Any = true;
          // Strength reduction only inserts/rewrites instructions:
          // the loop forest survives; re-scan it for further IVs.
          // (Previously this rebuilt CFG+dominators+loops per IV.)
          AM.invalidate(F, PreservedAnalyses::cfgShape());
          Retry = true;
          break;
        }
      }
    }
    return {Any ? PreservedAnalyses::cfgShape() : PreservedAnalyses::all(),
            Any};
  }

private:
  /// Finds basic IVs of \p L: values with exactly one def inside the
  /// loop, of the form `i = i + c` / `i = i - c`, whose block dominates
  /// every latch (executes exactly once per iteration).
  std::vector<BasicIV> findBasicIVs(const ProgramInfo &Info,
                                    const AliasInfo &AI,
                                    const CFGContext &CFG,
                                    const Dominators &Dom, const Loop &L) {
    std::vector<BasicIV> IVs;
    for (unsigned B : L.Blocks)
      for (Instr &I : CFG.block(B)->Insts) {
        if (I.Op != Opcode::Add && I.Op != Opcode::Sub)
          continue;
        if (I.Ty != IRType::Int)
          continue;
        if (I.Dest.isNone() || I.Ops[0] != I.Dest || !I.Ops[1].isConstInt())
          continue;
        if (I.Dest.isVar() && !Info.var(I.Dest.Id).isPromotable())
          continue;
        bool DominatesLatches = true;
        for (unsigned Latch : L.Latches)
          DominatesLatches &= Dom.dominates(B, Latch);
        if (!DominatesLatches)
          continue;
        // Must be the only def of the value inside the loop.
        unsigned Defs = 0;
        for (unsigned B2 : L.Blocks)
          for (const Instr &I2 : CFG.block(B2)->Insts) {
            if (I2.Dest == I.Dest)
              ++Defs;
            if (I.Dest.isVar() && AI.mayClobber(I2, I.Dest.Id))
              Defs += 2; // Clobbered: disqualify.
          }
        if (Defs != 1)
          continue;
        BasicIV IV;
        IV.IV = I.Dest;
        IV.Update = &I;
        IV.UpdateBlock = B;
        IV.Step = I.Op == Opcode::Add ? I.Ops[1].IntVal : -I.Ops[1].IntVal;
        IVs.push_back(IV);
      }
    return IVs;
  }

  bool runOnLoop(IRFunction &F, const ProgramInfo &Info,
                 const AliasInfo &AI, const CFGContext &CFG,
                 const Dominators &Dom, const Loop &L, BasicBlock *PH) {
    std::vector<BasicIV> IVs = findBasicIVs(Info, AI, CFG, Dom, L);
    if (IVs.empty())
      return false;

    for (const BasicIV &IV : IVs) {
      // Find derived uses `j = IV * k` (k constant != 0) inside the loop.
      std::vector<Instr *> Derived;
      std::int64_t K = 0;
      for (unsigned B : L.Blocks)
        for (Instr &I : CFG.block(B)->Insts) {
          if (I.Op != Opcode::Mul || I.Ty != IRType::Int)
            continue;
          Value Other;
          if (I.Ops[0] == IV.IV && I.Ops[1].isConstInt())
            Other = I.Ops[1];
          else if (I.Ops[1] == IV.IV && I.Ops[0].isConstInt())
            Other = I.Ops[0];
          else
            continue;
          if (Other.IntVal == 0 || I.Dest == IV.IV)
            continue;
          if (K == 0)
            K = Other.IntVal;
          if (Other.IntVal != K)
            continue; // One factor per rewrite round.
          Derived.push_back(&I);
        }
      if (Derived.empty() || K == 0)
        continue;

      // Create the strength-reduced temporary s with s == IV * K.
      Value S = F.newTemp(IRType::Int);
      {
        Instr Init;
        Init.Op = Opcode::Mul;
        Init.Ty = IRType::Int;
        Init.Dest = S;
        Init.Ops = {IV.IV, Value::constInt(K)};
        auto Pos = PH->Insts.end();
        --Pos;
        PH->Insts.insert(Pos, std::move(Init));
      }
      {
        Instr Bump;
        Bump.Op = Opcode::Add;
        Bump.Ty = IRType::Int;
        Bump.Dest = S;
        Bump.Ops = {S, Value::constInt(IV.Step * K)};
        Bump.Stmt = IV.Update->Stmt;
        BasicBlock *UB = CFG.block(IV.UpdateBlock);
        for (auto It = UB->Insts.begin(); It != UB->Insts.end(); ++It)
          if (&*It == IV.Update) {
            UB->Insts.insert(std::next(It), std::move(Bump));
            break;
          }
      }
      // Replace the derived computations.
      for (Instr *I : Derived) {
        I->Op = Opcode::Copy;
        I->Ops = {S};
      }

      // Linear function test replacement: rewrite in-loop exit tests
      // `t = cmp IV, n` (n a constant; K > 0 keeps the direction) to
      // compare the strength-reduced temp instead, freeing IV.
      if (K > 0) {
        for (unsigned B : L.Blocks)
          for (Instr &I : CFG.block(B)->Insts) {
            if (!isCompareOp(I.Op))
              continue;
            if (I.Ops[0] == IV.IV && I.Ops[1].isConstInt()) {
              I.Ops[0] = S;
              I.Ops[1] = Value::constInt(I.Ops[1].IntVal * K);
            } else if (I.Ops[1] == IV.IV && I.Ops[0].isConstInt()) {
              I.Ops[1] = S;
              I.Ops[0] = Value::constInt(I.Ops[0].IntVal * K);
            }
          }
      }

      // Register the recovery relation for the debugger: IV == S / K.
      if (IV.IV.isVar())
        F.SRRecords.push_back({IV.IV.Id, S, K});
      return true; // One IV per invocation; caller reiterates.
    }
    return false;
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createInductionVariableOptPass() {
  return std::make_unique<InductionVariableOpt>();
}
