//===- opt/SparseProp.cpp - Sparse SSA copy/const propagation ---*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse propagation over the SSA tier's def-use chains: single-def
/// temps defined by a Copy of a constant or of another single-def temp
/// are substituted into their uses, pure all-constant computations fold
/// to constants, and definitions left without any reader are erased.
/// Everything is gated on dominance — a substitution only happens where
/// the source definition dominates the use (for a phi operand the use
/// point is the end of the incoming predecessor, not the phi's block) —
/// and on the full use count of SsaDefUse, which includes a DeadMarker's
/// recovery value and the function's strength-reduction records, so no
/// definition a *debugger* still reads is ever deleted.  Variable stores
/// and markers are never rewritten: the pass moves values between
/// temporaries only, which is what keeps every §3 annotation intact.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include <unordered_set>
#include <vector>

using namespace sldb;

namespace {

/// Same integer fold semantics as LocalSimplify (division by zero stays
/// a runtime trap; shifts mask to 63).
bool foldInt(Opcode Op, std::int64_t A, std::int64_t B, std::int64_t &Out) {
  switch (Op) {
  case Opcode::Add:
    Out = A + B;
    return true;
  case Opcode::Sub:
    Out = A - B;
    return true;
  case Opcode::Mul:
    Out = A * B;
    return true;
  case Opcode::Div:
    if (B == 0)
      return false;
    Out = A / B;
    return true;
  case Opcode::Rem:
    if (B == 0)
      return false;
    Out = A % B;
    return true;
  case Opcode::And:
    Out = A & B;
    return true;
  case Opcode::Or:
    Out = A | B;
    return true;
  case Opcode::Xor:
    Out = A ^ B;
    return true;
  case Opcode::Shl:
    Out = A << (B & 63);
    return true;
  case Opcode::Shr:
    Out = A >> (B & 63);
    return true;
  case Opcode::CmpEQ:
    Out = A == B;
    return true;
  case Opcode::CmpNE:
    Out = A != B;
    return true;
  case Opcode::CmpLT:
    Out = A < B;
    return true;
  case Opcode::CmpLE:
    Out = A <= B;
    return true;
  case Opcode::CmpGT:
    Out = A > B;
    return true;
  case Opcode::CmpGE:
    Out = A >= B;
    return true;
  default:
    return false;
  }
}

/// Bounds one run like the pipeline's propagation clusters.
constexpr unsigned MaxRounds = 4;

class SparseProp : public Pass {
public:
  const char *name() const override { return "sparse-prop"; }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    (void)M;
    bool ChangedAny = false;
    for (unsigned Round = 0; Round < MaxRounds; ++Round) {
      CFGContext &CFG = AM.getResult<CFGContext>(F);
      Dominators &Dom = AM.getResult<Dominators>(F);
      SsaDefUse &DU = AM.getResult<SsaDefUse>(F);
      bool Changed = false;

      // 1. Fold pure all-constant computations on single-def temps into
      // copies of the result (which feeds the substitution map below).
      for (unsigned B = 0; B < CFG.numBlocks(); ++B)
        for (Instr &I : CFG.block(B)->Insts) {
          if (!I.Dest.isTemp() || !DU.singleDef(I.Dest.Id))
            continue;
          if (isBinaryOp(I.Op) && I.Ops[0].isConstInt() &&
              I.Ops[1].isConstInt()) {
            std::int64_t Out;
            if (foldInt(I.Op, I.Ops[0].IntVal, I.Ops[1].IntVal, Out)) {
              I.Op = Opcode::Copy;
              I.Ops.clear();
              I.Ops.push_back(Value::constInt(Out));
              Changed = true;
            }
          } else if (I.Op == Opcode::Neg && I.Ops[0].isConstInt()) {
            I.Op = Opcode::Copy;
            I.Ops[0] = Value::constInt(-I.Ops[0].IntVal);
            Changed = true;
          } else if (I.Op == Opcode::Not && I.Ops[0].isConstInt()) {
            I.Op = Opcode::Copy;
            I.Ops[0] = Value::constInt(!I.Ops[0].IntVal);
            Changed = true;
          }
        }

      // 2. Substitution map: single-def temp t with `t = copy src`,
      // src a constant or another single-def temp.
      std::vector<bool> HasSub(F.NextTemp, false);
      std::vector<Value> SubVal(F.NextTemp);
      std::vector<InstrId> SubDef(F.NextTemp, InvalidInstr);
      for (unsigned B = 0; B < CFG.numBlocks(); ++B)
        for (auto It = CFG.block(B)->Insts.begin(),
                  E = CFG.block(B)->Insts.end();
             It != E; ++It) {
          const Instr &I = *It;
          if (I.Op != Opcode::Copy || !I.Dest.isTemp() ||
              !DU.singleDef(I.Dest.Id))
            continue;
          const Value &Src = I.Ops[0];
          if (Src.isConst() || (Src.isTemp() && DU.singleDef(Src.Id))) {
            HasSub[I.Dest.Id] = true;
            SubVal[I.Dest.Id] = Src;
            SubDef[I.Dest.Id] = It.id();
          }
        }

      // 3. Substitute into dominated uses; one level per round (chains
      // resolve across rounds, each hop dominance-checked).  Temps that
      // gained uses this round must not be erased against the stale
      // counts below.
      std::unordered_set<TempId> GainedUses;
      auto DefDominatesUse = [&](InstrId DefId, unsigned UseBlock,
                                 unsigned UseOrd, bool UseAtBlockEnd) {
        unsigned DB = DU.blockOfInstr(DefId);
        if (DB == ~0u || UseBlock == ~0u)
          return false;
        if (DB != UseBlock)
          return Dom.dominates(DB, UseBlock);
        return UseAtBlockEnd || DU.ordinalOf(DefId) < UseOrd;
      };
      auto TrySub = [&](Value &Op, unsigned UseBlock, unsigned UseOrd,
                        bool UseAtBlockEnd) {
        if (!Op.isTemp() || Op.Id >= HasSub.size() || !HasSub[Op.Id])
          return;
        if (!DefDominatesUse(SubDef[Op.Id], UseBlock, UseOrd, UseAtBlockEnd))
          return;
        const Value &Repl = SubVal[Op.Id];
        if (Repl.isTemp())
          GainedUses.insert(Repl.Id);
        Op = Repl;
        Changed = true;
      };
      for (unsigned B = 0; B < CFG.numBlocks(); ++B)
        for (auto It = CFG.block(B)->Insts.begin(),
                  E = CFG.block(B)->Insts.end();
             It != E; ++It) {
          Instr &I = *It;
          const unsigned Ord = DU.ordinalOf(It.id());
          if (I.Op == Opcode::Phi) {
            // A phi operand is read at the end of its incoming edge.
            for (std::size_t A = 0; A < I.Ops.size(); ++A) {
              unsigned PB = CFG.indexOf(I.PhiPreds[A]);
              TrySub(I.Ops[A], PB, 0, /*UseAtBlockEnd=*/true);
            }
            continue;
          }
          for (Value &Op : I.Ops)
            TrySub(Op, B, Ord, false);
          if (I.Op == Opcode::DeadMarker)
            TrySub(I.Recovery, B, Ord, false);
        }

      // 4. Erase side-effect-free temp definitions nobody reads — not
      // even a recovery value or SR record (numUses counts both).
      for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
        BasicBlock *BB = CFG.block(B);
        for (auto It = BB->Insts.begin(); It != BB->Insts.end();) {
          const Instr &I = *It;
          if (I.Dest.isTemp() && !I.hasSideEffects() && !I.isTerm() &&
              DU.numUses(I.Dest.Id) == 0 && !GainedUses.count(I.Dest.Id)) {
            It = BB->Insts.erase(It);
            Changed = true;
            continue;
          }
          ++It;
        }
      }

      if (!Changed)
        break;
      ChangedAny = true;
      AM.invalidate(F, PreservedAnalyses::cfgShape());
    }
    if (!ChangedAny)
      return PassResult::unchanged();
    return {PreservedAnalyses::cfgShape(), true};
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createSparsePropPass() {
  return std::make_unique<SparseProp>();
}
