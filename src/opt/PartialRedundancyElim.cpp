//===- opt/PartialRedundancyElim.cpp - Assignment-level PRE ----*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partial redundancy elimination of whole *assignment expressions*
/// (`V = a op b`), in the Morel-Renvoise bit-vector formulation.  This is
/// the paper's "code hoisting" transformation, the one that creates
/// endangered variables by executing a source assignment prematurely
/// (paper §2.2, Figure 2).
///
/// Bookkeeping (paper §3):
///  * inserted instances are flagged IsHoisted and carry the assignment's
///    hoist key — they generate the debugger's *hoist reach*;
///  * deleted (redundant) occurrences are replaced by AvailMarker pseudo-
///    instructions carrying the same key — they kill the hoist reach.
///
/// Down-safety (the ANTIN term of the placement predicate) gives the
/// invariant the debugger's analysis relies on: every path from a hoisted
/// instance passes a redundant copy of the same key before any kill, so
/// the region of endangerment is bounded (paper §2.3).
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/Dataflow.h"

#include <map>
#include <unordered_map>
#include <vector>

using namespace sldb;

namespace {

/// Returns true if \p I is a PRE candidate occurrence and fills \p Key.
/// Candidates are source-level assignments `V = a op b` (or `V = copy a`,
/// `V = -a`, `V = ~a`) where V is a promotable scalar and the operands are
/// constants or scalar variables distinct from V.
bool occurrenceKey(const Instr &I, const ProgramInfo &Info, HoistKey &Key) {
  if (!I.IsSourceAssign || !I.Dest.isVar())
    return false;
  const VarInfo &VI = Info.var(I.Dest.Id);
  if (!VI.isPromotable())
    return false;
  auto OperandOK = [&](const Value &V) {
    if (V.isConst())
      return true;
    if (!V.isVar())
      return false;
    if (V.Id == I.Dest.Id)
      return false;
    return Info.var(V.Id).isScalar();
  };
  if (isBinaryOp(I.Op)) {
    if (I.Op == Opcode::Div || I.Op == Opcode::Rem) {
      // Only hoist potential traps when the divisor is a nonzero
      // constant; down-safety makes other cases legal too, but cmcc (and
      // we) keep faulting instructions anchored.
      if (!(I.Ops[1].isConstInt() && I.Ops[1].IntVal != 0))
        return false;
    }
    if (!OperandOK(I.Ops[0]) || !OperandOK(I.Ops[1]))
      return false;
    Key = {I.Dest.Id, I.Op, I.Ty, I.Ops[0], I.Ops[1]};
    return true;
  }
  if (I.Op == Opcode::Copy || I.Op == Opcode::Neg || I.Op == Opcode::Not) {
    if (!OperandOK(I.Ops[0]))
      return false;
    Key = {I.Dest.Id, I.Op, I.Ty, I.Ops[0], Value::none()};
    return true;
  }
  return false;
}

/// Per-instruction facts the kill predicates consume, computed once per
/// instruction instead of once per (instruction, key) pair — the kill
/// loops below are the quadratic core of the pass.
struct KillFacts {
  bool IsOcc = false;
  HoistKey Mine{};
  VarId DestV = InvalidVar; ///< Var destination, if any.
  bool CanClobber = false;  ///< Store/Call: may write through memory.
  bool MayRead = false;     ///< Load/Call/Ret: may read through memory.
  VarId Use0 = InvalidVar, Use1 = InvalidVar; ///< Var operands read.

  /// True when the instruction cannot kill *any* key (\p ForAnt also
  /// counts anticipability's read-kills), letting callers skip the
  /// per-key loop outright.
  bool inert(bool ForAnt) const {
    if (DestV != InvalidVar || CanClobber)
      return false;
    if (ForAnt && (MayRead || Use0 != InvalidVar || Use1 != InvalidVar))
      return false;
    return true;
  }
};

KillFacts killFactsOf(const Instr &I, const ProgramInfo &Info) {
  KillFacts F;
  F.IsOcc = occurrenceKey(I, Info, F.Mine);
  if (I.Dest.isVar())
    F.DestV = I.Dest.Id;
  F.CanClobber = I.Op == Opcode::Store || I.Op == Opcode::Call;
  F.MayRead =
      I.Op == Opcode::Load || I.Op == Opcode::Call || I.Op == Opcode::Ret;
  unsigned Cnt = 0;
  forEachUse(I, [&](const Value &V) {
    if (!V.isVar())
      return;
    if (Cnt == 0)
      F.Use0 = V.Id;
    else
      F.Use1 = V.Id;
    ++Cnt;
  });
  return F;
}

/// Availability kill: \p I destroys the *value* relation "V == a op b"
/// by redefining V or an operand.  Reads of V do not kill availability.
bool killsAvail(const Instr &I, const KillFacts &F, const HoistKey &Key,
                const AliasInfo &AI) {
  if (F.IsOcc && F.Mine == Key)
    return false;
  auto DefinesOrClobbers = [&](VarId V) {
    if (F.DestV == V)
      return true;
    return F.CanClobber && AI.mayClobber(I, V);
  };
  if (DefinesOrClobbers(Key.V))
    return true;
  if (Key.A.isVar() && DefinesOrClobbers(Key.A.Id))
    return true;
  if (Key.B.isVar() && DefinesOrClobbers(Key.B.Id))
    return true;
  return false;
}

// Anticipability kills are availability kills plus reads of V — a read
// blocks hoisting the assignment above it (the read would observe the
// premature value at runtime, not merely in the debugger).  KeyIndex
// below enumerates both kinds per instruction.

/// Variable-indexed kill lists.  A plain definition of variable v kills
/// exactly the keys whose value relation mentions v (ByAnyVar); a *read*
/// of v additionally ant-kills the keys whose destination is v
/// (ByDestVar).  Only Store/Call clobbers and memory reads still need a
/// full per-key scan — those are alias-dependent and rare, so the common
/// def-kill case drops from O(U) per instruction to the handful of keys
/// actually touching the defined variable.
struct KeyIndex {
  std::unordered_map<VarId, std::vector<unsigned>> ByAnyVar;
  std::unordered_map<VarId, std::vector<unsigned>> ByDestVar;

  explicit KeyIndex(const std::vector<HoistKey> &Keys) {
    for (unsigned KI = 0; KI < Keys.size(); ++KI) {
      const HoistKey &K = Keys[KI];
      ByAnyVar[K.V].push_back(KI);
      ByDestVar[K.V].push_back(KI);
      // occurrenceKey guarantees operands differ from the destination.
      if (K.A.isVar())
        ByAnyVar[K.A.Id].push_back(KI);
      if (K.B.isVar() && !(K.A.isVar() && K.B.Id == K.A.Id))
        ByAnyVar[K.B.Id].push_back(KI);
    }
  }

  /// Invokes \p Fn for every key availability-killed by \p I, matching
  /// killsAvail() key-for-key (Fn may fire twice for a key; callers do
  /// idempotent bit clears).  \p Own is the instruction's own key id (or
  /// ~0u) — an occurrence never kills its own key.
  template <typename Fn>
  void forEachAvailKill(const Instr &I, const KillFacts &F, unsigned Own,
                        const std::vector<HoistKey> &Keys,
                        const AliasInfo &AI, Fn &&Callback) const {
    if (F.DestV != InvalidVar) {
      auto It = ByAnyVar.find(F.DestV);
      if (It != ByAnyVar.end())
        for (unsigned KI : It->second)
          if (KI != Own)
            Callback(KI);
    }
    if (F.CanClobber)
      for (unsigned KI = 0; KI < Keys.size(); ++KI)
        if (KI != Own && killsAvail(I, F, Keys[KI], AI))
          Callback(KI);
  }

  /// The kills killsAnt() adds beyond killsAvail(): reads of a key's
  /// destination variable, either through memory or as a direct operand.
  template <typename Fn>
  void forEachAntOnlyKill(const Instr &I, const KillFacts &F, unsigned Own,
                          const std::vector<HoistKey> &Keys,
                          const AliasInfo &AI, Fn &&Callback) const {
    if (F.MayRead)
      for (unsigned KI = 0; KI < Keys.size(); ++KI)
        if (KI != Own && AI.mayRead(I, Keys[KI].V))
          Callback(KI);
    auto UseKills = [&](VarId V) {
      if (V == InvalidVar)
        return;
      auto It = ByDestVar.find(V);
      if (It != ByDestVar.end())
        for (unsigned KI : It->second)
          if (KI != Own)
            Callback(KI);
    };
    UseKills(F.Use0);
    if (F.Use1 != F.Use0)
      UseKills(F.Use1);
  }
};

struct KeyOrder {
  bool operator()(const HoistKey &L, const HoistKey &R) const {
    auto ValKey = [](const Value &V) {
      return std::tuple(static_cast<int>(V.K), V.Id, V.IntVal, V.DblVal);
    };
    return std::tuple(L.V, static_cast<int>(L.Op), static_cast<int>(L.Ty),
                      ValKey(L.A), ValKey(L.B)) <
           std::tuple(R.V, static_cast<int>(R.Op), static_cast<int>(R.Ty),
                      ValKey(R.A), ValKey(R.B));
  }
};

class PartialRedundancyElim : public Pass {
public:
  const char *name() const override {
    return "partial-redundancy-elimination(hoisting)";
  }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    // Both phases rewrite instructions in place (insertions go before
    // existing terminators), so the cached CFG context stays valid
    // across them — the manager shares one build where the pass
    // previously built two.
    bool Changed = runMorelRenvoise(F, M, AM);
    Changed |= eliminateAvailable(F, M, AM);
    return {Changed ? PreservedAnalyses::cfgShape() : PreservedAnalyses::all(),
            Changed};
  }

private:
  bool runMorelRenvoise(IRFunction &F, IRModule &M, AnalysisManager &AM) {
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    AliasInfo &AI = AM.getResult<AliasInfo>(F);
    const ProgramInfo &Info = *M.Info;
    const unsigned N = CFG.numBlocks();

    // Enumerate keys.
    std::map<HoistKey, unsigned, KeyOrder> KeyIds;
    std::vector<HoistKey> Keys;
    for (unsigned B = 0; B < N; ++B)
      for (const Instr &I : CFG.block(B)->Insts) {
        HoistKey K;
        if (occurrenceKey(I, Info, K) && !KeyIds.count(K)) {
          KeyIds[K] = static_cast<unsigned>(Keys.size());
          Keys.push_back(K);
        }
      }
    if (Keys.empty())
      return false;
    const unsigned U = static_cast<unsigned>(Keys.size());

    // Local predicates.  ANTLOC/TRANSP use the anticipability kill (reads
    // of V block hoisting); COMP/availability use the weaker value kill.
    std::vector<BitVector> Antloc(N, BitVector(U)), Comp(N, BitVector(U)),
        Transp(N, BitVector(U, true)), TranspAv(N, BitVector(U, true));
    const KeyIndex KX(Keys);
    for (unsigned B = 0; B < N; ++B) {
      BitVector AntKilledAbove(U);
      for (const Instr &I : CFG.block(B)->Insts) {
        const KillFacts KF = killFactsOf(I, Info);
        unsigned Id = KF.IsOcc ? KeyIds[KF.Mine] : ~0u;
        if (KF.IsOcc && !AntKilledAbove.test(Id))
          Antloc[B].set(Id);
        if (KF.IsOcc)
          Comp[B].set(Id);
        if (KF.inert(/*ForAnt=*/true))
          continue;
        // An availability kill is also an anticipability kill.
        KX.forEachAvailKill(I, KF, Id, Keys, AI, [&](unsigned KI) {
          AntKilledAbove.set(KI);
          Transp[B].reset(KI);
          TranspAv[B].reset(KI);
          Comp[B].reset(KI);
        });
        KX.forEachAntOnlyKill(I, KF, Id, Keys, AI, [&](unsigned KI) {
          AntKilledAbove.set(KI);
          Transp[B].reset(KI);
        });
      }
    }

    // AVIN/AVOUT (forward, intersect).
    DataflowProblem AvP;
    AvP.Dir = FlowDir::Forward;
    AvP.Meet = FlowMeet::Intersect;
    AvP.init(CFG, U);
    for (unsigned B = 0; B < N; ++B) {
      AvP.Gen[B] = Comp[B];
      AvP.Kill[B] = TranspAv[B];
      AvP.Kill[B].flip();
      AvP.Kill[B].subtract(Comp[B]);
    }
    DataflowResult AV = solveDataflow(CFG, AvP);

    // PAVIN/PAVOUT (forward, union).
    DataflowProblem PavP = AvP;
    PavP.Meet = FlowMeet::Union;
    DataflowResult PAV = solveDataflow(CFG, PavP);

    // ANTIN/ANTOUT (backward, intersect).
    DataflowProblem AntP;
    AntP.Dir = FlowDir::Backward;
    AntP.Meet = FlowMeet::Intersect;
    AntP.init(CFG, U);
    for (unsigned B = 0; B < N; ++B) {
      AntP.Gen[B] = Antloc[B];
      AntP.Kill[B] = Transp[B];
      AntP.Kill[B].flip();
      AntP.Kill[B].subtract(Antloc[B]);
    }
    DataflowResult ANT = solveDataflow(CFG, AntP);

    // Insertion happens at the end of a block but *before* its
    // terminator; if the terminator itself reads a key's destination
    // variable (`condbr x, ...` / `ret x`), placement there is illegal.
    // Folding this into PPOUT keeps the placement system consistent.
    std::vector<BitVector> TermBlocked(N, BitVector(U));
    for (unsigned B = 0; B < N; ++B) {
      const Instr &T = CFG.block(B)->term();
      for (const Value &UVal : instrUses(T))
        if (UVal.isVar()) {
          auto It = KX.ByDestVar.find(UVal.Id);
          if (It != KX.ByDestVar.end())
            for (unsigned KI : It->second)
              TermBlocked[B].set(KI);
        }
    }

    // Morel-Renvoise placement-possible system (greatest fixed point).
    std::vector<BitVector> PPIn(N, BitVector(U, true)),
        PPOut(N, BitVector(U, true));
    // Boundary conditions: nothing can be placed before the entry or
    // after an exit.
    PPIn[0] = BitVector(U);
    for (unsigned E : CFG.exits())
      PPOut[E] = BitVector(U);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned Step = 0; Step < N; ++Step) {
        unsigned B = N - 1 - Step;
        // PPOUT(B) = AND over succs of PPIN(S); exits stay empty.
        bool IsExit = false;
        for (unsigned E : CFG.exits())
          IsExit |= E == B;
        if (!IsExit) {
          BitVector NewOut(U, !CFG.succs(B).empty());
          for (unsigned S : CFG.succs(B))
            NewOut &= PPIn[S];
          if (CFG.succs(B).empty())
            NewOut = BitVector(U);
          NewOut.subtract(TermBlocked[B]);
          if (NewOut != PPOut[B]) {
            PPOut[B] = std::move(NewOut);
            Changed = true;
          }
        }
        if (B == 0)
          continue; // Entry boundary.
        // PPIN(B) = ANTIN & PAVIN & (ANTLOC | (TRANSP & PPOUT))
        //           & AND over preds (PPOUT(P) | AVOUT(P)).
        BitVector NewIn = ANT.In[B];
        NewIn &= PAV.In[B];
        BitVector Local = Transp[B];
        Local &= PPOut[B];
        Local |= Antloc[B];
        NewIn &= Local;
        for (unsigned Pred : CFG.preds(B)) {
          BitVector Term = PPOut[Pred];
          Term |= AV.Out[Pred];
          NewIn &= Term;
        }
        if (NewIn != PPIn[B]) {
          PPIn[B] = std::move(NewIn);
          Changed = true;
        }
      }
    }

    // INSERT(B) = PPOUT & !AVOUT & (!PPIN | !TRANSP).
    // DELETE(B) = ANTLOC & PPIN.
    bool Transformed = false;
    std::vector<StmtId> KeyStmt(U, InvalidStmt);
    std::vector<std::vector<Instr *>> Deletions(U);
    for (unsigned B = 0; B < N; ++B) {
      BitVector Del = Antloc[B];
      Del &= PPIn[B];
      if (Del.none())
        continue;
      BitVector Seen(U);
      for (Instr &I : CFG.block(B)->Insts) {
        HoistKey K;
        if (!occurrenceKey(I, Info, K))
          continue;
        unsigned Id = KeyIds[K];
        if (!Del.test(Id) || Seen.test(Id))
          continue;
        Seen.set(Id); // Only the upward-exposed occurrence is deleted.
        Deletions[Id].push_back(&I);
        if (KeyStmt[Id] == InvalidStmt)
          KeyStmt[Id] = I.Stmt;
      }
    }

    for (unsigned B = 0; B < N; ++B) {
      BitVector Ins = PPOut[B];
      Ins.subtract(AV.Out[B]);
      BitVector NotProfit = PPIn[B];
      NotProfit &= Transp[B];
      Ins.subtract(NotProfit);
      if (Ins.none())
        continue;
      for (unsigned Id : Ins) {
        if (Deletions[Id].empty())
          continue; // No redundancy would be removed; skip insertion.
        const HoistKey &K = Keys[Id];
        Instr Hoisted;
        Hoisted.Op = K.Op;
        Hoisted.Ty = K.Ty;
        Hoisted.Dest = Value::var(K.V, K.Ty);
        Hoisted.Ops = {K.A};
        if (!K.B.isNone())
          Hoisted.Ops.push_back(K.B);
        Hoisted.Stmt = KeyStmt[Id];
        Hoisted.IsSourceAssign = true;
        Hoisted.IsHoisted = true;
        Hoisted.HoistKey = F.internHoistKey(K);
        BasicBlock *BB = CFG.block(B);
        auto Pos = BB->Insts.end();
        --Pos; // Before the terminator.
        BB->Insts.insert(Pos, std::move(Hoisted));
        Transformed = true;
      }
    }

    // Perform deletions (only for keys that had at least one insertion —
    // otherwise the "redundancy" was full redundancy over existing
    // occurrences, which is also safe to delete: the value is available).
    for (unsigned Id = 0; Id < U; ++Id) {
      for (Instr *I : Deletions[Id]) {
        Instr Marker;
        Marker.Op = Opcode::AvailMarker;
        Marker.MarkVar = Keys[Id].V;
        Marker.MarkStmt = I->Stmt;
        Marker.Stmt = I->Stmt;
        Marker.HoistKey = F.internHoistKey(Keys[Id]);
        *I = std::move(Marker);
        Transformed = true;
      }
    }
    return Transformed;
  }

  /// Full-redundancy elimination: an assignment occurrence whose key is
  /// *available* (the variable already holds exactly this value on every
  /// path) is deleted outright — the paper's "E2 deleted because
  /// available" case, which needs no insertion.  Source-position
  /// occurrences leave an AvailMarker; bare hoisted instances vanish.
  bool eliminateAvailable(IRFunction &F, IRModule &M, AnalysisManager &AM) {
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    AliasInfo &AI = AM.getResult<AliasInfo>(F);
    const ProgramInfo &Info = *M.Info;
    const unsigned N = CFG.numBlocks();

    std::map<HoistKey, unsigned, KeyOrder> KeyIds;
    std::vector<HoistKey> Keys;
    for (unsigned B = 0; B < N; ++B)
      for (const Instr &I : CFG.block(B)->Insts) {
        HoistKey K;
        if (occurrenceKey(I, Info, K) && !KeyIds.count(K)) {
          KeyIds[K] = static_cast<unsigned>(Keys.size());
          Keys.push_back(K);
        }
      }
    if (Keys.empty())
      return false;
    const unsigned U = static_cast<unsigned>(Keys.size());

    const KeyIndex KX(Keys);
    std::vector<BitVector> Comp(N, BitVector(U)),
        TranspAv(N, BitVector(U, true));
    for (unsigned B = 0; B < N; ++B)
      for (const Instr &I : CFG.block(B)->Insts) {
        const KillFacts KF = killFactsOf(I, Info);
        unsigned Own = KF.IsOcc ? KeyIds[KF.Mine] : ~0u;
        if (KF.IsOcc)
          Comp[B].set(Own);
        if (KF.inert(/*ForAnt=*/false))
          continue;
        KX.forEachAvailKill(I, KF, Own, Keys, AI, [&](unsigned KI) {
          TranspAv[B].reset(KI);
          Comp[B].reset(KI);
        });
      }

    DataflowProblem AvP;
    AvP.Dir = FlowDir::Forward;
    AvP.Meet = FlowMeet::Intersect;
    AvP.init(CFG, U);
    for (unsigned B = 0; B < N; ++B) {
      AvP.Gen[B] = Comp[B];
      AvP.Kill[B] = TranspAv[B];
      AvP.Kill[B].flip();
      AvP.Kill[B].subtract(Comp[B]);
    }
    DataflowResult AV = solveDataflow(CFG, AvP);

    bool Changed = false;
    for (unsigned B = 0; B < N; ++B) {
      BitVector Avail = AV.In[B];
      BasicBlock *BB = CFG.block(B);
      for (auto It = BB->Insts.begin(); It != BB->Insts.end();) {
        Instr &I = *It;
        const KillFacts KF = killFactsOf(I, Info);
        unsigned Own = KF.IsOcc ? KeyIds[KF.Mine] : ~0u;
        if (KF.IsOcc && Avail.test(Own)) {
          Changed = true;
          if (I.IsHoisted && !I.IsSunk) {
            // A compiler-inserted instance: delete silently (paper §3).
            It = BB->Insts.erase(It);
            continue;
          }
          Instr Marker;
          Marker.Op = Opcode::AvailMarker;
          Marker.MarkVar = KF.Mine.V;
          Marker.MarkStmt = I.Stmt;
          Marker.Stmt = I.Stmt;
          Marker.HoistKey = F.internHoistKey(KF.Mine);
          I = std::move(Marker);
          ++It;
          continue;
        }
        if (KF.IsOcc)
          Avail.set(Own);
        if (!KF.inert(/*ForAnt=*/false))
          KX.forEachAvailKill(I, KF, Own, Keys, AI,
                              [&](unsigned KI) { Avail.reset(KI); });
        ++It;
      }
    }
    return Changed;
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createPartialRedundancyElimPass() {
  return std::make_unique<PartialRedundancyElim>();
}
