//===- opt/PartialDeadCodeElim.cpp - Assignment sinking --------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partial dead-code elimination by assignment sinking (Knoop/Rüthing/
/// Steffen PLDI'94, the transformation of the paper's Figure 3): an
/// assignment `V = e` whose value is dead along some successor paths is
/// pushed onto the successor edges where V is live, eliminating the
/// execution on the dead paths.
///
/// Bookkeeping (paper §3):
///  * the original occurrence, if it was a source assignment, is replaced
///    by a DeadMarker (gen site of dead-reach: V's actual value is stale
///    from here until a real assignment executes);
///  * the edge copies are flagged IsSunk and remain real assignments to V
///    (they kill dead-reach);
///  * sinking a compiler-inserted (hoisted/sunk) copy leaves no marker.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

using namespace sldb;

namespace {

class PartialDeadCodeElim : public Pass {
public:
  const char *name() const override {
    return "partial-dead-code-elimination(sinking)";
  }

  PassResult run(IRFunction &F, IRModule &M, AnalysisManager &AM) override {
    bool Any = false;
    // Sunk copies can sink further; two rounds capture the common cases
    // without risking ping-pong.
    for (int Round = 0; Round < 2; ++Round)
      if (runOnce(F, M, AM))
        Any = true;
      else
        break;
    // Edge splits are invalidated eagerly inside runOnce; afterwards the
    // cached CFG is current and only instruction content has moved.
    return {Any ? PreservedAnalyses::cfgShape() : PreservedAnalyses::all(),
            Any};
  }

private:
  /// Candidate check: same shape as PRE occurrences, plus "downward
  /// exposed" (no conflict between the instruction and the block end).
  bool isCandidate(const Instr &I, const ProgramInfo &Info) {
    if (!I.Dest.isVar())
      return false;
    const VarInfo &VI = Info.var(I.Dest.Id);
    if (!VI.isPromotable())
      return false;
    auto OperandOK = [&](const Value &V) {
      if (V.isConst())
        return true;
      if (V.isTemp())
        return false; // Temps are defined upstream; don't move across.
      if (!V.isVar() || V.Id == I.Dest.Id)
        return false;
      return Info.var(V.Id).isScalar();
    };
    switch (I.Op) {
    case Opcode::Copy:
    case Opcode::Neg:
    case Opcode::Not:
      return OperandOK(I.Ops[0]);
    default:
      if (!isBinaryOp(I.Op))
        return false;
      if (I.Op == Opcode::Div || I.Op == Opcode::Rem) {
        // Sinking can *reduce* executions of a trap, which is fine for C,
        // but moving it onto a new edge must not introduce one: it
        // cannot, since the edge path executed it before.  Still require
        // a constant divisor to keep traps anchored, symmetric with PRE.
        if (!(I.Ops[1].isConstInt() && I.Ops[1].IntVal != 0))
          return false;
      }
      return OperandOK(I.Ops[0]) && OperandOK(I.Ops[1]);
    }
  }

  /// Returns true if \p Later conflicts with moving \p I past it:
  /// uses/defines V or defines an operand of \p I.
  bool conflicts(const Instr &I, const Instr &Later, const AliasInfo &AI) {
    VarId V = I.Dest.Id;
    if (Later.Dest.isVar() && Later.Dest.Id == V)
      return true;
    if (AI.mayClobber(Later, V) || AI.mayRead(Later, V))
      return true;
    bool ReadsV = false;
    forEachUse(Later, [&](const Value &UVal) {
      ReadsV |= UVal.isVar() && UVal.Id == V;
    });
    if (ReadsV)
      return true;
    for (const Value &Op : I.Ops) {
      if (!Op.isVar())
        continue;
      if (Later.Dest.isVar() && Later.Dest.Id == Op.Id)
        return true;
      if (AI.mayClobber(Later, Op.Id))
        return true;
    }
    return false;
  }

  bool runOnce(IRFunction &F, IRModule &M, AnalysisManager &AM) {
    const ProgramInfo &Info = *M.Info;
    CFGContext &CFG = AM.getResult<CFGContext>(F);
    ValueIndex &VI = AM.getResult<ValueIndex>(F);
    Liveness &LV = AM.getResult<Liveness>(F);
    AliasInfo &AI = AM.getResult<AliasInfo>(F);

    // Collect sink opportunities first (the transformation splits edges,
    // which invalidates the CFG context).
    struct Sink {
      BasicBlock *Block;
      Instr *I;
      std::vector<BasicBlock *> LiveSuccs;
    };
    std::vector<Sink> Sinks;

    for (unsigned B = 0; B < CFG.numBlocks(); ++B) {
      BasicBlock *BB = CFG.block(B);
      if (BB->succRange().size() < 2)
        continue; // Only branch points make assignments partially dead.
      for (auto It = BB->Insts.begin(); It != BB->Insts.end(); ++It) {
        Instr &I = *It;
        if (!isCandidate(I, Info))
          continue;
        // Downward exposure: nothing after I in the block may conflict.
        bool Blocked = false;
        auto After = std::next(It);
        for (; After != BB->Insts.end(); ++After)
          if (conflicts(I, *After, AI)) {
            Blocked = true;
            break;
          }
        if (Blocked)
          continue;
        unsigned DestIdx = VI.valueIndex(I.Dest);
        if (DestIdx == ~0u)
          continue;
        // Partially dead: live into some successors but not all.
        std::vector<BasicBlock *> LiveSuccs, DeadSuccs;
        for (BasicBlock *S : BB->succRange()) {
          if (LV.liveIn(CFG.indexOf(S)).test(DestIdx))
            LiveSuccs.push_back(S);
          else
            DeadSuccs.push_back(S);
        }
        if (LiveSuccs.empty() || DeadSuccs.empty())
          continue;
        Sinks.push_back({BB, &I, LiveSuccs});
        break; // One sink per block per round keeps liveness valid.
      }
    }

    if (Sinks.empty())
      return false;

    // Sinking removes the original store; avail markers of V below it
    // lose their certificate (see demoteUnsoundAvailMarkers in Pass.h).
    // Record the demotion sites now and walk after the CFG is rebuilt.
    struct Demote {
      BasicBlock *Block;
      const Instr *Marker; ///< null: walk the whole block.
      VarId V;
    };
    std::vector<Demote> Demotes;

    for (Sink &S : Sinks) {
      Instr Moved = *S.I;
      bool WasSource = Moved.IsSourceAssign && !Moved.IsHoisted &&
                       !Moved.IsSunk;
      // Place a sunk copy on every edge where V is live.
      for (BasicBlock *Succ : S.LiveSuccs) {
        BasicBlock *Target = Succ;
        if (Succ->Preds.size() > 1)
          Target = F.splitEdge(S.Block, Succ);
        Instr Copy = Moved;
        Copy.IsSunk = true;
        Target->Insts.insert(Target->Insts.begin(), std::move(Copy));
      }
      // Replace the original.
      if (WasSource) {
        Instr Marker;
        Marker.Op = Opcode::DeadMarker;
        Marker.MarkVar = Moved.Dest.Id;
        Marker.MarkStmt = Moved.Stmt;
        Marker.Stmt = Moved.Stmt;
        if (Moved.Op == Opcode::Copy)
          Marker.Recovery = Moved.Ops[0];
        *S.I = std::move(Marker);
        Demotes.push_back({S.Block, S.I, Moved.Dest.Id});
      } else {
        // Compiler copy: remove it entirely.
        for (auto It = S.Block->Insts.begin(); It != S.Block->Insts.end();
             ++It)
          if (&*It == S.I) {
            S.Block->Insts.erase(It);
            break;
          }
        // The removal site is gone; walking from the block head is
        // conservative (may demote markers whose provider is above the
        // erased copy) but sound.
        Demotes.push_back({S.Block, nullptr, Moved.Dest.Id});
      }
    }
    F.recomputePreds();

    // The edge splits above changed the block graph: drop everything and
    // fetch a fresh context for the demotion walk.
    AM.invalidateAll(F);
    CFGContext &NewCFG = AM.getResult<CFGContext>(F);
    for (const Demote &D : Demotes) {
      auto It = D.Block->Insts.begin();
      if (D.Marker) {
        while (It != D.Block->Insts.end() && &*It != D.Marker)
          ++It;
        if (It != D.Block->Insts.end())
          ++It; // start just past the dead marker
      }
      demoteUnsoundAvailMarkers(NewCFG, NewCFG.indexOf(D.Block), It, D.V);
    }
    return true;
  }
};

} // namespace

std::unique_ptr<Pass> sldb::createPartialDeadCodeElimPass() {
  return std::make_unique<PartialDeadCodeElim>();
}
