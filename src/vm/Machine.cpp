//===- vm/Machine.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "support/Casting.h"
#include "support/FaultInjector.h"

#include <cstdio>
#include <cstring>

using namespace sldb;

Machine::Machine(const MachineModule &MM, std::uint64_t MaxSteps)
    : MM(MM), MaxSteps(MaxSteps), Mem(1 << 22) {
  if (FaultInjector::armed(FaultId::TrapVMMidRun))
    TrapAtStep = 1 + FaultInjector::rand() % 2000;
  // Globals at the bottom of memory; stack grows above them.
  SP = MM.GlobalWords;
  for (const auto &[Addr, Init] : MM.GlobalInits) {
    if (Init.isConstDouble())
      Mem[Addr].D = Init.DblVal;
    else
      Mem[Addr].I = Init.IntVal;
  }
}

void Machine::trap(const std::string &Msg) {
  if (Reason != StopReason::Trapped) {
    Reason = StopReason::Trapped;
    TrapMsg = Msg;
  }
}

std::int64_t Machine::readMemInt(std::size_t Addr) const {
  return Addr < Mem.size() ? Mem[Addr].I : 0;
}

double Machine::readMemDouble(std::size_t Addr) const {
  return Addr < Mem.size() ? Mem[Addr].D : 0.0;
}

std::size_t Machine::resolveMemOperand(const MInstr &I) {
  if (I.AddrReg.isValid())
    return static_cast<std::size_t>(R[I.AddrReg.N]);
  if (I.FrameSlot >= 0)
    return FP + static_cast<std::size_t>(I.FrameSlot);
  if (I.GlobalVar != InvalidVar)
    return MM.GlobalAddr.at(I.GlobalVar);
  trap("memory instruction without an address");
  return 0;
}

StopReason Machine::run() {
  if (!reset())
    return Reason;
  return resumeImpl(/*SkipFirst=*/false);
}

StopReason Machine::startPaused() {
  if (!reset())
    return Reason;
  Reason = StopReason::Breakpoint;
  return Reason;
}

bool Machine::reset() {
  std::memset(R, 0, sizeof(R));
  for (double &D : F)
    D = 0.0;
  Frames.clear();
  Output.clear();
  Executed = 0;
  Reason = StopReason::Running;
  Started = true;

  const MachineFunction *Main = MM.findFunc("main");
  if (!Main) {
    trap("no main function");
    return false;
  }
  PC.Func = static_cast<std::uint32_t>(Main - &MM.Funcs[0]);
  PC.Local = 0;
  FP = MM.GlobalWords;
  SP = FP + Main->FrameSize;
  if (SP >= Mem.size()) {
    trap("stack overflow");
    return false;
  }
  return true;
}

StopReason Machine::resume() { return resumeImpl(/*SkipFirst=*/true); }

StopReason Machine::resumeImpl(bool SkipFirst) {
  if (Reason == StopReason::Breakpoint)
    Reason = StopReason::Running;
  bool First = SkipFirst;
  while (Reason == StopReason::Running) {
    if (!First && Breaks.count(pack(PC))) {
      Reason = StopReason::Breakpoint;
      return Reason;
    }
    First = false;
    step();
  }
  return Reason;
}

StopReason Machine::step() {
  if (Reason != StopReason::Running && Reason != StopReason::Breakpoint)
    return Reason;
  Reason = StopReason::Running;

  const MachineFunction &MF = MM.Funcs[PC.Func];
  if (PC.Local >= MF.numInstrs()) {
    trap("program counter out of range");
    return Reason;
  }
  // Locate the instruction (blocks are laid out consecutively).
  std::uint32_t B = 0;
  while (B + 1 < MF.BlockAddr.size() && MF.BlockAddr[B + 1] <= PC.Local)
    ++B;
  const MInstr &I = MF.Blocks[B].Insts[PC.Local - MF.BlockAddr[B]];

  if (!I.isMarker()) {
    if (++Executed > MaxSteps) {
      Reason = StopReason::StepLimit;
      TrapMsg = "step limit exceeded (fuel budget " +
                std::to_string(MaxSteps) + " instructions)";
      return Reason;
    }
    if (TrapAtStep != 0 && Executed >= TrapAtStep) {
      trap("injected fault: VM trapped mid-run");
      return Reason;
    }
  }
  exec(I);
  return Reason;
}

void Machine::exec(const MInstr &I) {
  auto NextPC = [&] { ++PC.Local; };
  std::int64_t *RD = I.Dest.isValid() && I.Dest.Cls == RegClass::Int
                         ? &R[I.Dest.N]
                         : nullptr;
  double *FD = I.Dest.isValid() && I.Dest.Cls == RegClass::Fp
                   ? &F[I.Dest.N]
                   : nullptr;
  auto RS0 = [&] { return R[I.Src0.N]; };
  auto RS1 = [&] { return R[I.Src1.N]; };
  auto FS0 = [&] { return F[I.Src0.N]; };
  auto FS1 = [&] { return F[I.Src1.N]; };

  switch (I.Op) {
  case MOp::ADD:
    *RD = RS0() + RS1();
    break;
  case MOp::SUB:
    *RD = RS0() - RS1();
    break;
  case MOp::MUL:
    *RD = RS0() * RS1();
    break;
  case MOp::DIV:
    if (RS1() == 0) {
      trap("integer division by zero");
      return;
    }
    *RD = RS0() / RS1();
    break;
  case MOp::REM:
    if (RS1() == 0) {
      trap("integer remainder by zero");
      return;
    }
    *RD = RS0() % RS1();
    break;
  case MOp::AND:
    *RD = RS0() & RS1();
    break;
  case MOp::OR:
    *RD = RS0() | RS1();
    break;
  case MOp::XOR:
    *RD = RS0() ^ RS1();
    break;
  case MOp::SLL:
    *RD = RS0() << (RS1() & 63);
    break;
  case MOp::SRA:
    *RD = RS0() >> (RS1() & 63);
    break;
  case MOp::SEQ:
    *RD = RS0() == RS1();
    break;
  case MOp::SNE:
    *RD = RS0() != RS1();
    break;
  case MOp::SLT:
    *RD = RS0() < RS1();
    break;
  case MOp::SLE:
    *RD = RS0() <= RS1();
    break;
  case MOp::SGT:
    *RD = RS0() > RS1();
    break;
  case MOp::SGE:
    *RD = RS0() >= RS1();
    break;
  case MOp::NEG:
    *RD = -RS0();
    break;
  case MOp::NOT:
    *RD = ~RS0();
    break;
  case MOp::MOV:
    *RD = RS0();
    break;
  case MOp::LI:
    *RD = I.Imm;
    break;
  case MOp::FADD:
    *FD = FS0() + FS1();
    break;
  case MOp::FSUB:
    *FD = FS0() - FS1();
    break;
  case MOp::FMUL:
    *FD = FS0() * FS1();
    break;
  case MOp::FDIV:
    *FD = FS1() == 0 ? 0 : FS0() / FS1();
    break;
  case MOp::FNEG:
    *FD = -FS0();
    break;
  case MOp::FMOV:
    *FD = FS0();
    break;
  case MOp::LID:
    *FD = I.FImm;
    break;
  case MOp::FEQ:
    *RD = FS0() == FS1();
    break;
  case MOp::FNE:
    *RD = FS0() != FS1();
    break;
  case MOp::FLT:
    *RD = FS0() < FS1();
    break;
  case MOp::FLE:
    *RD = FS0() <= FS1();
    break;
  case MOp::FGT:
    *RD = FS0() > FS1();
    break;
  case MOp::FGE:
    *RD = FS0() >= FS1();
    break;
  case MOp::CVTID:
    *FD = static_cast<double>(RS0());
    break;
  case MOp::CVTDI:
    *RD = static_cast<std::int64_t>(FS0());
    break;
  case MOp::LW:
  case MOp::LD: {
    std::size_t Addr = resolveMemOperand(I);
    if (Reason == StopReason::Trapped)
      return;
    if (Addr >= Mem.size()) {
      trap("load out of bounds");
      return;
    }
    if (I.Op == MOp::LW)
      *RD = Mem[Addr].I;
    else
      *FD = Mem[Addr].D;
    break;
  }
  case MOp::SW:
  case MOp::SD: {
    std::size_t Addr = resolveMemOperand(I);
    if (Reason == StopReason::Trapped)
      return;
    if (Addr >= Mem.size()) {
      trap("store out of bounds");
      return;
    }
    if (I.Op == MOp::SW)
      Mem[Addr].I = R[I.Src0.N];
    else
      Mem[Addr].D = F[I.Src0.N];
    break;
  }
  case MOp::LA: {
    std::size_t Addr;
    if (I.FrameSlot >= 0)
      Addr = FP + static_cast<std::size_t>(I.FrameSlot);
    else if (I.GlobalVar != InvalidVar)
      Addr = MM.GlobalAddr.at(I.GlobalVar);
    else {
      trap("la without operand");
      return;
    }
    *RD = static_cast<std::int64_t>(Addr);
    break;
  }
  case MOp::J:
    PC.Local = MM.Funcs[PC.Func].BlockAddr[I.TargetBlock];
    return;
  case MOp::BNEZ:
    if (R[I.Src0.N] != 0) {
      PC.Local = MM.Funcs[PC.Func].BlockAddr[I.TargetBlock];
      return;
    }
    break;
  case MOp::JAL: {
    if (Frames.size() >= 4096) {
      trap("call stack overflow");
      return;
    }
    Frame Fr;
    Fr.RetPC = {PC.Func, PC.Local + 1};
    Fr.SavedFP = FP;
    std::memcpy(Fr.SavedR, R, sizeof(R));
    std::memcpy(Fr.SavedF, F, sizeof(F));
    Frames.push_back(Fr);
    const MachineFunction &Callee = MM.Funcs[I.Callee];
    FP = SP;
    SP += Callee.FrameSize;
    if (SP >= Mem.size()) {
      trap("stack overflow");
      return;
    }
    PC = {I.Callee, 0};
    return;
  }
  case MOp::RET: {
    if (Frames.empty()) {
      ExitValue = R[R3K::IntRetReg];
      Reason = StopReason::Exited;
      return;
    }
    Frame Fr = Frames.back();
    Frames.pop_back();
    std::int64_t RV = R[R3K::IntRetReg];
    double FRV = F[R3K::FpRetReg];
    std::memcpy(R, Fr.SavedR, sizeof(R));
    std::memcpy(F, Fr.SavedF, sizeof(F));
    R[R3K::IntRetReg] = RV;
    F[R3K::FpRetReg] = FRV;
    SP = FP;
    FP = Fr.SavedFP;
    PC = Fr.RetPC;
    return;
  }
  case MOp::PRINTI:
    Output.push_back(std::to_string(R[I.Src0.N]));
    break;
  case MOp::PRINTD: {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", F[I.Src0.N]);
    Output.emplace_back(Buf);
    break;
  }
  case MOp::MDEAD:
  case MOp::MAVAIL:
  case MOp::MNOP:
    break;
  }
  NextPC();
}
