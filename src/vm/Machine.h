//===- vm/Machine.h - R3K simulator ------------------------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled MachineModules: the runtime substrate the debugger
/// inspects.  Supports breakpoints at instruction addresses, register and
/// memory inspection, and dynamic instruction counting (markers execute
/// as zero-size no-ops and are not counted).
///
/// Simplifications vs. real MIPS hardware (documented in DESIGN.md): word
/// addressed memory; the call sequence saves/restores the register file in
/// the VM (callee-saves-everything), so calls clobber only the return
/// value registers.
///
//===----------------------------------------------------------------------===//

#ifndef SLDB_VM_MACHINE_H
#define SLDB_VM_MACHINE_H

#include "codegen/MachineIR.h"
#include "support/ZeroedBuffer.h"

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace sldb {

/// A global code address.
struct CodeAddr {
  std::uint32_t Func = ~0u;  ///< Index into MachineModule::Funcs.
  std::uint32_t Local = 0;   ///< Function-local instruction index.

  bool operator==(const CodeAddr &RHS) const {
    return Func == RHS.Func && Local == RHS.Local;
  }
};

/// Why the machine stopped.
enum class StopReason : std::uint8_t {
  Running,
  Breakpoint,
  Exited,
  Trapped,
  StepLimit
};

/// The R3K simulator.
class Machine {
public:
  explicit Machine(const MachineModule &MM, std::uint64_t MaxSteps =
                                                50'000'000);

  /// Resets and starts main(); runs until a stop condition.
  StopReason run();

  /// Resets and arranges to start main() *paused* at its first
  /// instruction: returns StopReason::Breakpoint without executing
  /// anything (or Trapped when setup fails).  The debugger's stepping
  /// entry point — run() would sprint to the first breakpoint instead.
  StopReason startPaused();

  /// Resumes after a breakpoint stop.
  StopReason resume();

  /// Executes one instruction (markers are skipped transparently).
  StopReason step();

  /// Rewrites a Running state as a Breakpoint stop: the single-stepper
  /// landed on a statement boundary and the session is now "stopped at a
  /// breakpoint" as far as every inspection API is concerned.
  void noteStop() {
    if (Reason == StopReason::Running)
      Reason = StopReason::Breakpoint;
  }

  /// Adds/removes a breakpoint.
  void setBreakpoint(CodeAddr A) { Breaks.insert(pack(A)); }
  void clearBreakpoint(CodeAddr A) { Breaks.erase(pack(A)); }
  void clearAllBreakpoints() { Breaks.clear(); }

  //===--- State inspection (the debugger's window) ----------------------===//

  CodeAddr pc() const { return PC; }
  StopReason state() const { return Reason; }
  std::int64_t exitValue() const { return ExitValue; }
  const std::string &trapMessage() const { return TrapMsg; }
  std::uint64_t instrCount() const { return Executed; }
  const std::vector<std::string> &output() const { return Output; }

  std::string outputText() const {
    std::string S;
    for (const std::string &Line : Output) {
      S += Line;
      S += '\n';
    }
    return S;
  }

  /// Debugger-facing register reads.  Bounds-clamped: a corrupted
  /// recovery annotation may name a register that does not exist, and
  /// the inspection window must stay memory-safe regardless.
  std::int64_t readIntReg(unsigned N) const {
    return N < R3K::NumIntRegs ? R[N] : 0;
  }
  double readFpReg(unsigned N) const {
    return N < R3K::NumFpRegs ? F[N] : 0.0;
  }

  /// Reads a data word (global or stack).
  std::int64_t readMemInt(std::size_t Addr) const;
  double readMemDouble(std::size_t Addr) const;

  /// Frame base of the current (innermost) activation.
  std::size_t framePointer() const { return FP; }

  /// Number of live activations.
  std::size_t frameDepth() const { return Frames.size(); }

  /// Function index of the current activation.
  std::uint32_t currentFunc() const { return PC.Func; }

private:
  static std::uint64_t pack(CodeAddr A) {
    return (static_cast<std::uint64_t>(A.Func) << 32) | A.Local;
  }

  StopReason resumeImpl(bool SkipFirst);
  bool reset(); ///< Shared setup of run()/startPaused().
  void trap(const std::string &Msg);
  void exec(const MInstr &I);
  std::size_t resolveMemOperand(const MInstr &I);

  struct Word {
    std::int64_t I = 0;
    double D = 0.0;
  };

  struct Frame {
    CodeAddr RetPC;
    std::size_t SavedFP = 0;
    std::int64_t SavedR[R3K::NumIntRegs];
    double SavedF[R3K::NumFpRegs];
  };

  const MachineModule &MM;
  std::uint64_t MaxSteps;

  CodeAddr PC;
  std::int64_t R[R3K::NumIntRegs] = {0};
  double F[R3K::NumFpRegs] = {0};
  ZeroedBuffer<Word> Mem;
  std::size_t FP = 0; ///< Current frame base (word address).
  std::size_t SP = 0; ///< Stack top.
  std::vector<Frame> Frames;

  std::unordered_set<std::uint64_t> Breaks;
  StopReason Reason = StopReason::Running;
  std::int64_t ExitValue = 0;
  std::string TrapMsg;
  std::uint64_t Executed = 0;
  std::vector<std::string> Output;
  bool Started = false;

  /// Fault injection (FaultId::TrapVMMidRun): instruction count at which
  /// the VM spuriously traps; 0 when the fault is not armed.
  std::uint64_t TrapAtStep = 0;
};

} // namespace sldb

#endif // SLDB_VM_MACHINE_H
