#!/usr/bin/env sh
# Perf smoke test: runs bench_pipeline_throughput once and fails when the
# measured compile+sweep time regresses more than 25% against the
# checked-in baseline (bench/baseline_pipeline_throughput.json).  The
# margin is wide enough for CI noise; it exists to catch order-of-
# magnitude substrate regressions (an accidental per-instruction
# allocation, a quadratic kill loop), not single-digit drift.
#
# Usage: tools/perf_smoke.sh <bench_pipeline_throughput-binary> <baseline.json>

set -e

BENCH=$1
BASELINE=$2
if [ -z "$BENCH" ] || [ -z "$BASELINE" ]; then
  echo "usage: $0 <bench-binary> <baseline.json>" >&2
  exit 2
fi

LINE=$("$BENCH" | grep '^BENCH ') || {
  echo "perf_smoke: bench emitted no BENCH line" >&2
  exit 1
}

COMPILE=$(printf '%s\n' "$LINE" | sed -n 's/.*"compile_ms":\([0-9.]*\).*/\1/p')
SWEEP=$(printf '%s\n' "$LINE" | sed -n 's/.*"sweep_ms":\([0-9.]*\).*/\1/p')
ALIAS_OVERHEAD=$(printf '%s\n' "$LINE" |
  sed -n 's/.*"alias_overhead":\([0-9.]*\).*/\1/p')
BASE_COMPILE=$(sed -n 's/.*"compile_ms": *\([0-9.]*\).*/\1/p' "$BASELINE")
BASE_SWEEP=$(sed -n 's/.*"sweep_ms": *\([0-9.]*\).*/\1/p' "$BASELINE")

if [ -z "$COMPILE" ] || [ -z "$SWEEP" ] || [ -z "$BASE_COMPILE" ] ||
   [ -z "$BASE_SWEEP" ]; then
  echo "perf_smoke: failed to parse timings" >&2
  echo "  bench:    $LINE" >&2
  echo "  baseline: $BASELINE" >&2
  exit 1
fi

awk -v c="$COMPILE" -v s="$SWEEP" -v bc="$BASE_COMPILE" -v bs="$BASE_SWEEP" \
  'BEGIN {
     total = c + s
     base = bc + bs
     limit = base * 1.25
     printf "perf_smoke: %.1f ms (compile %.1f + sweep %.1f) vs baseline %.1f ms, limit %.1f ms\n", \
            total, c, s, base, limit
     if (total > limit) {
       print "perf_smoke: FAIL - pipeline throughput regressed >25% vs baseline"
       exit 1
     }
     print "perf_smoke: OK"
   }'

# The aliasing corpus (arrays/pointers/indirect stores) rides the same
# bench run: its compile loop may cost more than the scalar corpus — the
# alias analysis and Load/Store lowering are real work — but a blowup
# beyond 3x means a quadratic kill scan or per-instruction points-to
# recomputation crept in.
if [ -n "$ALIAS_OVERHEAD" ]; then
  awk -v r="$ALIAS_OVERHEAD" 'BEGIN {
    printf "perf_smoke: alias corpus overhead %.2fx (limit 3.00x)\n", r
    if (r > 3.0) {
      print "perf_smoke: FAIL - alias-enabled generator compile blowup"
      exit 1
    }
  }'
fi
