#!/bin/sh
# check_trace_schema.sh — validate the Chrome-trace-format JSON the
# observability layer writes (sldbc --trace-json, sldb-fuzz --trace-json).
#
#   check_trace_schema.sh <sldbc> <sldb-fuzz> <input.mc>
#
# Generates a compile+debug trace and a merged campaign trace into a
# temporary directory and checks, for each document:
#
#   * top-level shape: {"traceEvents": [...], "displayTimeUnit": ...};
#   * per event: required keys (name, cat, ph, ts, pid, tid), ph is one
#     of "X" (complete span, with dur >= 0) or "i" (instant, with s);
#   * timestamps are monotonically nondecreasing within each tid (the
#     writer sorts by (tid, ts));
#   * "X" spans nest properly within each tid: a span overlapping an
#     enclosing span must be fully contained in it (balanced spans).
#
# Exit status 0 when every generated trace validates, 1 otherwise.
set -eu

if [ $# -ne 3 ]; then
  echo "usage: $0 <sldbc> <sldb-fuzz> <input.mc>" >&2
  exit 2
fi
SLDBC=$1
SLDB_FUZZ=$2
INPUT=$3

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# 1. Compile + interactive-debug trace through sldbc.
"$SLDBC" --trace-json="$TMP/compile.json" --debug \
  --cmd "b main 2" --cmd run --cmd "explain c" --cmd q \
  "$INPUT" >/dev/null

# 2. Merged campaign trace through sldb-fuzz (two jobs, so the
#    deterministic seed-major merge actually has something to merge).
"$SLDB_FUZZ" --seed 5 --count 6 --jobs 2 --no-write \
  --trace-json "$TMP/campaign.json" >/dev/null

validate() {
  python3 - "$1" <<'PYEOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)  # Parse failure -> traceback -> nonzero exit.

def fail(msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)

if not isinstance(doc, dict) or "traceEvents" not in doc:
    fail("missing top-level traceEvents")
if "displayTimeUnit" not in doc:
    fail("missing displayTimeUnit")
events = doc["traceEvents"]
if not isinstance(events, list):
    fail("traceEvents is not a list")
if not events:
    fail("trace is empty (generation produced no events)")

by_tid = {}
for i, e in enumerate(events):
    for key in ("name", "cat", "ph", "ts", "pid", "tid"):
        if key not in e:
            fail(f"event {i} missing required key '{key}'")
    if e["ph"] not in ("X", "i"):
        fail(f"event {i} has unexpected ph '{e['ph']}'")
    if e["ph"] == "X":
        if "dur" not in e or not isinstance(e["dur"], int) or e["dur"] < 0:
            fail(f"event {i} ('X') needs an integer dur >= 0")
    if e["ph"] == "i" and e.get("s") != "t":
        fail(f"event {i} ('i') needs scope s == 't'")
    if not isinstance(e["ts"], int) or e["ts"] < 0:
        fail(f"event {i} needs an integer ts >= 0")
    by_tid.setdefault(e["tid"], []).append(e)

for tid, evs in by_tid.items():
    last_ts = -1
    stack = []  # (start, end) of open enclosing spans.
    for e in evs:
        ts = e["ts"]
        if ts < last_ts:
            fail(f"tid {tid}: timestamps not monotonic ({ts} < {last_ts})")
        last_ts = ts
        if e["ph"] != "X":
            continue
        end = ts + e["dur"]
        while stack and stack[-1][1] <= ts:
            stack.pop()
        if stack and end > stack[-1][1]:
            fail(f"tid {tid}: span [{ts},{end}) straddles enclosing "
                 f"span [{stack[-1][0]},{stack[-1][1]}) — unbalanced")
        stack.append((ts, end))

print(f"{path}: OK ({len(events)} events, {len(by_tid)} tid(s))")
PYEOF
}

validate "$TMP/compile.json"
validate "$TMP/campaign.json"
