//===- tools/sldb-fuzz.cpp - Differential fuzzing driver --------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the differential fuzzing oracle:
///
///   sldb-fuzz --seed 1 --count 200         # campaign (both codegen modes)
///   sldb-fuzz --oracle=step --count 200    # stepping/line-table oracle
///   sldb-fuzz --oracle=crosslevel --count 50 # pipeline-lattice sweep
///   sldb-fuzz --inject --count 200         # fault-injection campaign
///   sldb-fuzz --dump-seed 42               # print one generated program
///   sldb-fuzz --repro fuzz-failures/x.minic  # re-judge one reproducer
///
/// Exit status: 0 when every run satisfies the soundness contract, 1 on
/// any violation (reproducers are written to --write-dir), 2 on usage
/// errors.
///
//===----------------------------------------------------------------------===//

#include "eval/Levels.h"
#include "fuzz/Campaign.h"
#include "fuzz/QualityCampaign.h"
#include "support/FaultInjector.h"
#include "support/Interrupt.h"
#include "support/Sharder.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace sldb;

namespace {

struct Options {
  std::uint32_t Seed = 1;
  unsigned Count = 200;
  bool Promote = true;
  bool BothModes = true;
  bool Shrink = true;
  bool Write = true;
  std::string WriteDir = "fuzz-failures";
  std::string ReproPath;
  long DumpSeed = -1;
  std::string Oracle = "diff"; ///< diff | step | crosslevel.
  std::string Level; ///< --level NAME: judge at one named pipeline level.
  bool Inject = false;
  int Isolate = -1; ///< -1 default (on for --inject, off otherwise).
  unsigned TimeoutMs = 20'000;
  unsigned Jobs = 1;       ///< 0 = all hardware cores.
  unsigned ShardIndex = 0; ///< --shard i/k.
  unsigned ShardCount = 1;
  bool WorkerStats = false;
  std::string TraceJson; ///< --trace-json FILE.
  bool Alias = false;    ///< --alias: arrays/pointers in the generator.
};

void usage() {
  std::fprintf(
      stderr,
      "usage: sldb-fuzz [options]\n"
      "  --seed N        first seed (default 1)\n"
      "  --count M       number of generated programs (default 200)\n"
      "  --no-promote    only the frame-slot codegen configuration\n"
      "  --no-shrink     keep reproducers unminimized\n"
      "  --no-write      do not write reproducer files\n"
      "  --write-dir D   reproducer directory (default fuzz-failures)\n"
      "  --alias         enable the aliasing generator grammar (arrays,\n"
      "                  pointers, address-taken locals, indirect stores)\n"
      "  --dump-seed N   print the program for seed N and exit\n"
      "  --repro FILE    re-judge a program/reproducer file and exit\n"
      "  --oracle=K      which oracle drives the campaign (default diff):\n"
      "                  diff       variable-value lockstep soundness\n"
      "                  step       stepping/line-table oracle (phantom or\n"
      "                             vanished statement boundaries fail)\n"
      "                  crosslevel sweep every pipeline level, judge\n"
      "                             availability regressions against the\n"
      "                             lockstep ground truth, and measure\n"
      "                             per-level conservatism\n"
      "  --level NAME    run the diff/step campaign at one named pipeline\n"
      "                  level (eval/Levels.h: O0, O2nl, O2nl-ssa, ...)\n"
      "                  instead of the default lockstep set; the level\n"
      "                  must be judgeable (no peel/unroll/inline)\n"
      "  --inject        fault-injection campaign: every seed is judged\n"
      "                  once per defended fault point; crashes, hangs,\n"
      "                  and unsound verdicts fail\n"
      "  --isolate       fork each check under a watchdog (default for\n"
      "                  --inject)\n"
      "  --no-isolate    run checks in-process\n"
      "  --timeout-ms N  watchdog budget per isolated check (default\n"
      "                  20000)\n"
      "  --jobs N        fan units across N worker threads (0 = all\n"
      "                  cores; default 1).  The report is byte-identical\n"
      "                  for every N; with --isolate each worker forks\n"
      "                  its own watchdogged child\n"
      "  --shard I/K     run only the I-th of K contiguous slices of the\n"
      "                  seed range (0-based; distributed campaigns)\n"
      "  --worker-stats  print per-worker throughput/steal/slowest-seed\n"
      "                  stats plus the campaign-wide cache-hit/query\n"
      "                  counters to stderr after the campaign\n"
      "  --trace-json F  write the merged per-unit trace (Chrome trace\n"
      "                  format, seed-major unit order, deterministic for\n"
      "                  every --jobs value) to F\n");
}

bool parseUnsigned(const char *S, unsigned long &Out) {
  char *End = nullptr;
  Out = std::strtoul(S, &End, 10);
  return End && *End == '\0' && End != S;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    unsigned long N = 0;
    if (A == "--seed") {
      const char *V = Next();
      if (!V || !parseUnsigned(V, N))
        return false;
      O.Seed = static_cast<std::uint32_t>(N);
    } else if (A == "--count") {
      const char *V = Next();
      if (!V || !parseUnsigned(V, N))
        return false;
      O.Count = static_cast<unsigned>(N);
    } else if (A == "--no-promote") {
      O.Promote = false;
      O.BothModes = false;
    } else if (A == "--no-shrink") {
      O.Shrink = false;
    } else if (A == "--no-write") {
      O.Write = false;
    } else if (A == "--write-dir") {
      const char *V = Next();
      if (!V)
        return false;
      O.WriteDir = V;
    } else if (A == "--dump-seed") {
      const char *V = Next();
      if (!V || !parseUnsigned(V, N))
        return false;
      O.DumpSeed = static_cast<long>(N);
    } else if (A == "--repro") {
      const char *V = Next();
      if (!V)
        return false;
      O.ReproPath = V;
    } else if (A.rfind("--oracle=", 0) == 0) {
      O.Oracle = A.substr(9);
      if (O.Oracle != "diff" && O.Oracle != "step" &&
          O.Oracle != "crosslevel")
        return false;
    } else if (A == "--oracle") {
      const char *V = Next();
      if (!V)
        return false;
      O.Oracle = V;
      if (O.Oracle != "diff" && O.Oracle != "step" &&
          O.Oracle != "crosslevel")
        return false;
    } else if (A == "--level") {
      const char *V = Next();
      if (!V)
        return false;
      O.Level = V;
    } else if (A == "--inject") {
      O.Inject = true;
    } else if (A == "--isolate") {
      O.Isolate = 1;
    } else if (A == "--no-isolate") {
      O.Isolate = 0;
    } else if (A == "--timeout-ms") {
      const char *V = Next();
      if (!V || !parseUnsigned(V, N))
        return false;
      O.TimeoutMs = static_cast<unsigned>(N);
    } else if (A == "--jobs") {
      const char *V = Next();
      if (!V || !parseUnsigned(V, N))
        return false;
      O.Jobs = static_cast<unsigned>(N);
    } else if (A == "--shard") {
      const char *V = Next();
      if (!V || !Sharder::parseSpec(V, O.ShardIndex, O.ShardCount))
        return false;
    } else if (A == "--alias") {
      O.Alias = true;
    } else if (A == "--worker-stats") {
      O.WorkerStats = true;
    } else if (A == "--trace-json") {
      const char *V = Next();
      if (!V)
        return false;
      O.TraceJson = V;
    } else {
      return false;
    }
  }
  return true;
}

int runRepro(const Options &O) {
  std::ifstream In(O.ReproPath);
  if (!In) {
    std::fprintf(stderr, "sldb-fuzz: cannot read '%s'\n",
                 O.ReproPath.c_str());
    return 2;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Src = SS.str();

  // A reproducer from a level campaign must be re-judged at that level.
  const LevelSpec *Spec = nullptr;
  if (!O.Level.empty()) {
    Spec = findLevel(O.Level);
    if (!Spec || !judgeable(*Spec)) {
      std::fprintf(stderr, "sldb-fuzz: unknown or non-judgeable level '%s'\n",
                   O.Level.c_str());
      return 2;
    }
  }
  int Status = 0;
  const bool OneMode = !O.BothModes || Spec;
  for (int Mode = 0; Mode < (OneMode ? 1 : 2); ++Mode) {
    bool Promote = Spec      ? Spec->Promote
                   : OneMode ? O.Promote
                             : Mode == 0;
    std::vector<Violation> Vs =
        checkProgram(Src, Promote, 4000, Spec ? &Spec->Opts : nullptr);
    std::printf("promote-vars %s: %zu violation(s)\n",
                Promote ? "on" : "off", Vs.size());
    for (const Violation &V : Vs) {
      std::printf("  %s\n", V.str().c_str());
      Status = 1;
    }
  }
  return Status;
}

/// Per-worker diagnostics, on stderr so campaign *reports* (stdout)
/// stay byte-identical across --jobs values.  The trailing totals line
/// folds in the process-wide Stats counters the campaign accumulated:
/// classifier/analysis cache effectiveness and classifier queries per
/// second of total worker busy time.  Isolated campaigns fork each unit,
/// so the children's counters never reach this process and the totals
/// read zero — same trade as the coverage accounting.
void printWorkerStats(const std::vector<CampaignWorkerStats> &Workers) {
  std::uint64_t BusyUs = 0;
  for (const CampaignWorkerStats &W : Workers) {
    std::fprintf(stderr,
                 "worker %u: %u unit(s) (%u stolen, queued %u), "
                 "%.1f units/s busy, slowest seed %u (%llu ms)\n",
                 W.Worker, W.Units, W.Steals, W.InitialQueue,
                 W.unitsPerSec(), W.SlowestSeed,
                 static_cast<unsigned long long>(W.SlowestUs / 1000));
    BusyUs += W.BusyUs;
  }
  std::uint64_t Queries = Stats::counter("classifier.queries").value();
  std::uint64_t CH = Stats::counter("classifier.cache.hits").value();
  std::uint64_t CM = Stats::counter("classifier.cache.misses").value();
  std::uint64_t AH = Stats::counter("analysis.cache.hits").value();
  std::uint64_t AM = Stats::counter("analysis.cache.misses").value();
  std::fprintf(stderr,
               "totals: %llu classifier queries (%.0f/s busy), "
               "classifier cache %.1f%% hit, analysis cache %.1f%% hit\n",
               static_cast<unsigned long long>(Queries),
               BusyUs ? 1e6 * static_cast<double>(Queries) /
                            static_cast<double>(BusyUs)
                      : 0.0,
               Stats::percent(CH, CM), Stats::percent(AH, AM));
}

/// Folds a graceful interruption (SIGINT/SIGTERM) into the campaign's
/// exit status.  By this point the full report — covering everything
/// that finished before the signal — and any reproducer files are
/// already flushed; the note plus the conventional 128+SIGINT status
/// keep a partial report from being mistaken for a complete one.
int finishCampaign(int RC, unsigned SkippedUnits) {
  if (SkippedUnits == 0)
    return RC;
  std::fprintf(stderr,
               "sldb-fuzz: interrupted — report is PARTIAL (%u unit(s) "
               "skipped); reproducers for completed units are on disk\n",
               SkippedUnits);
  return 130;
}

/// Writes the merged campaign trace (--trace-json).  Returns false (and
/// complains) on I/O failure.
bool writeTraceFile(const std::string &Path,
                    const std::vector<TraceEvent> &Events) {
  std::ofstream Out(Path, std::ios::binary);
  if (Out)
    Out << Trace::renderJson(Events);
  if (!Out) {
    std::fprintf(stderr, "sldb-fuzz: cannot write trace file '%s'\n",
                 Path.c_str());
    return false;
  }
  return true;
}

int runInject(const Options &O) {
  InjectCampaignConfig C;
  C.Seed = O.Seed;
  C.Count = O.Count;
  C.Gen.Alias = O.Alias;
  C.Promote = O.Promote;
  C.Shrink = O.Shrink;
  C.Isolate = O.Isolate != 0; // Default on for --inject.
  C.TimeoutMs = O.TimeoutMs;
  C.WriteFailures = O.Write;
  C.CrashDir = O.WriteDir == "fuzz-failures" ? "fuzz-crashes" : O.WriteDir;
  C.Jobs = O.Jobs;
  C.ShardIndex = O.ShardIndex;
  C.ShardCount = O.ShardCount;
  C.CollectTrace = !O.TraceJson.empty();
  C.Level = O.Level;
  InjectCampaignResult R = runInjectCampaign(C);
  if (!R.ConfigError.empty()) {
    std::fprintf(stderr, "sldb-fuzz: %s\n", R.ConfigError.c_str());
    return 2;
  }
  if (O.WorkerStats)
    printWorkerStats(R.Workers);
  if (!O.TraceJson.empty() && !writeTraceFile(O.TraceJson, R.Trace))
    return 2;

  unsigned Defended = 0;
  for (const FaultPoint &P : FaultInjector::points())
    if (P.Defended)
      ++Defended;
  std::printf("inject:        %u programs x %u fault points = %u runs "
              "(%s)\n",
              R.Programs, Defended, R.Runs,
              C.Isolate ? "isolated, watchdog on" : "in-process");
  std::printf("outcomes:      %u degraded-conservative, %u compile "
              "errors, %u crashes, %u hangs, %u unsound\n",
              R.DegradedRuns, R.CompileErrors, R.Crashes, R.Hangs,
              R.UnsoundRuns);
  if (R.sound()) {
    std::printf("injection:     OK (no crash, no hang, no unsound verdict "
                "under any injected fault)\n");
    return finishCampaign(0, R.SkippedUnits);
  }
  std::printf("injection:     %zu FAILING run(s)\n", R.Failures.size());
  for (const CampaignFailure &F : R.Failures) {
    std::printf("  seed %u fault %s: %s\n", F.Seed, F.FaultName.c_str(),
                F.ProcessOutcome.empty()
                    ? F.Violations.front().str().c_str()
                    : F.ProcessOutcome.c_str());
    if (!F.Path.empty())
      std::printf("    reproducer: %s\n", F.Path.c_str());
  }
  return finishCampaign(1, R.SkippedUnits);
}

int runStep(const Options &O) {
  StepCampaignConfig C;
  C.Seed = O.Seed;
  C.Count = O.Count;
  C.Gen.Alias = O.Alias;
  C.BothPromoteModes = O.BothModes;
  C.Promote = O.Promote;
  C.Level = O.Level;
  C.Shrink = O.Shrink;
  C.WriteFailures = O.Write;
  C.FailureDir = O.WriteDir;
  C.Jobs = O.Jobs;
  C.ShardIndex = O.ShardIndex;
  C.ShardCount = O.ShardCount;
  StepCampaignResult R = runStepCampaign(C);
  if (!R.ConfigError.empty()) {
    std::fprintf(stderr, "sldb-fuzz: %s\n", R.ConfigError.c_str());
    return 2;
  }
  if (O.WorkerStats)
    printWorkerStats(R.Workers);

  std::fputs(renderStepCampaignReport(R).c_str(), stdout);
  if (R.sound()) {
    std::printf("stepping:       OK (no phantom or vanished statement "
                "boundaries, behavior matched)\n");
    return finishCampaign(0, R.SkippedUnits);
  }
  std::printf("stepping:       %zu FAILING run(s)\n", R.Failures.size());
  for (const CampaignFailure &F : R.Failures) {
    std::printf("  seed %u (promote-vars %s): %s\n", F.Seed,
                F.Promote ? "on" : "off",
                F.Violations.front().str().c_str());
    if (!F.Path.empty())
      std::printf("    reproducer: %s\n", F.Path.c_str());
  }
  return finishCampaign(1, R.SkippedUnits);
}

int runCrossLevel(const Options &O) {
  CrossLevelCampaignConfig C;
  C.Seed = O.Seed;
  C.Count = O.Count;
  C.Gen.Alias = O.Alias;
  C.Shrink = O.Shrink;
  C.WriteFailures = O.Write;
  C.FailureDir = O.WriteDir;
  C.Jobs = O.Jobs;
  C.ShardIndex = O.ShardIndex;
  C.ShardCount = O.ShardCount;
  CrossLevelCampaignResult R = runCrossLevelCampaign(C);
  if (!R.ConfigError.empty()) {
    std::fprintf(stderr, "sldb-fuzz: %s\n", R.ConfigError.c_str());
    return 2;
  }
  if (O.WorkerStats)
    printWorkerStats(R.Workers);

  std::fputs(renderCrossLevelCampaignReport(R).c_str(), stdout);
  if (R.sound()) {
    std::printf("cross-level:    OK (no unexplained availability "
                "regression, every level sound)\n");
    return finishCampaign(0, R.SkippedUnits);
  }
  std::printf("cross-level:    FAIL (%u unexplained regression(s), %u "
              "unsound run(s))\n",
              R.Unexplained, R.UnsoundRuns);
  for (const CampaignFailure &F : R.Failures) {
    std::printf("  seed %u level %s: %s\n", F.Seed, F.Level.c_str(),
                F.Violations.front().str().c_str());
    if (!F.Path.empty())
      std::printf("    reproducer: %s\n", F.Path.c_str());
  }
  return finishCampaign(1, R.SkippedUnits);
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage();
    return 2;
  }
  // Ctrl-C / SIGTERM flush a partial report instead of losing the
  // campaign: workers drain at the next unit boundary, merges run as
  // usual, and finishCampaign() marks the output partial (exit 130).
  installInterruptHandlers();
  if (!O.TraceJson.empty()) {
    if (!Trace::compiledIn())
      std::fprintf(stderr,
                   "sldb-fuzz: note: tracing compiled out (SLDB_TRACE=OFF); "
                   "'%s' will hold an empty trace\n",
                   O.TraceJson.c_str());
    Trace::enable();
  }

  if (O.DumpSeed >= 0) {
    GenOptions G;
    G.Alias = O.Alias;
    std::string Src =
        generateProgram(static_cast<std::uint32_t>(O.DumpSeed), G);
    std::fputs(Src.c_str(), stdout);
    return 0;
  }
  if (!O.ReproPath.empty())
    return runRepro(O);
  if (O.Inject)
    return runInject(O);
  if (O.Oracle == "step")
    return runStep(O);
  if (O.Oracle == "crosslevel")
    return runCrossLevel(O);

  CampaignConfig C;
  C.Seed = O.Seed;
  C.Count = O.Count;
  C.Gen.Alias = O.Alias;
  C.BothPromoteModes = O.BothModes;
  C.Promote = O.Promote;
  C.Level = O.Level;
  C.Shrink = O.Shrink;
  C.WriteFailures = O.Write;
  C.FailureDir = O.WriteDir;
  C.Isolate = O.Isolate == 1;
  C.TimeoutMs = O.TimeoutMs;
  C.Jobs = O.Jobs;
  C.ShardIndex = O.ShardIndex;
  C.ShardCount = O.ShardCount;
  C.CollectTrace = !O.TraceJson.empty();
  CampaignResult R = runCampaign(C);
  if (!R.ConfigError.empty()) {
    std::fprintf(stderr, "sldb-fuzz: %s\n", R.ConfigError.c_str());
    return 2;
  }
  if (O.WorkerStats)
    printWorkerStats(R.Workers);
  if (!O.TraceJson.empty() && !writeTraceFile(O.TraceJson, R.Trace))
    return 2;

  std::printf("programs:      %u (%u lockstep runs)\n", R.Programs,
              R.Runs);
  std::printf("paired stops:  %llu (%llu variable observations)\n",
              static_cast<unsigned long long>(R.Stops),
              static_cast<unsigned long long>(R.Observations));
  std::printf("coverage:      hoisted %u, sunk %u, dead-marks %u, "
              "avail-marks %u, iv-recoveries %u (of %u programs)\n",
              R.Coverage.WithHoisted, R.Coverage.WithSunk,
              R.Coverage.WithDeadMarks, R.Coverage.WithAvailMarks,
              R.Coverage.WithSRRecords, R.Programs);
  for (const PassFiring &F : R.Coverage.Firings)
    if (F.Changed)
      std::printf("  pass %-44s fired %u\n", F.Name.c_str(), F.Changed);
  if (R.FailedCompiles)
    std::printf("GENERATOR BUG: %u programs failed to compile\n",
                R.FailedCompiles);

  if (R.sound()) {
    std::printf("soundness:     OK (no Current-with-wrong-value, no wrong "
                "recovery, tables consistent)\n");
    return finishCampaign(0, R.SkippedUnits);
  }
  std::printf("soundness:     %zu FAILING program(s)\n", R.Failures.size());
  for (const CampaignFailure &F : R.Failures) {
    std::printf("  seed %u (promote-vars %s): %s\n", F.Seed,
                F.Promote ? "on" : "off",
                F.Violations.front().str().c_str());
    if (!F.Path.empty())
      std::printf("    reproducer: %s\n", F.Path.c_str());
  }
  return finishCampaign(1, R.SkippedUnits);
}
