//===- tools/sldbc.cpp - Compiler driver + debugger REPL --------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
// The command-line face of the library: compile MiniC with the cmcc-style
// optimizer, inspect the IR/machine code, run under the R3K simulator, or
// debug interactively with full endangered-variable classification.
//
//   sldbc prog.mc                     compile -O2 and run
//   sldbc --emit=ir prog.mc           dump IR as generated
//   sldbc --emit=ir-opt prog.mc       dump IR after optimization
//   sldbc --emit=asm prog.mc          dump annotated R3K machine code
//   sldbc --emit=stmts prog.mc        dump the statement (breakpoint) map
//   sldbc -O0 prog.mc                 disable the optimizer
//   sldbc --level=pre prog.mc         compile at one named pipeline level
//                                     (eval/Levels.h table: O0, constprop,
//                                     ..., O2nl, O2-frame, O2)
//   sldbc --sweep-levels prog.mc      classify every (breakpoint, var)
//                                     point at every pipeline level and
//                                     print the cross-level quality table
//                                     with availability regressions
//   sldbc --no-promote prog.mc        keep variables in memory (Fig 5a)
//   sldbc --batch DIR                 compile every .mc file under DIR in
//                                     one process, reusing one arena
//                                     (reset per module) across the corpus
//   sldbc --time-passes prog.mc       per-pass wall time report (stderr)
//   sldbc --pass-stats prog.mc        per-pass change counts + analysis
//                                     cache hit/miss report (stderr)
//   sldbc --verify-each prog.mc       run the IR verifier after every pass
//   sldbc --trace-json=FILE prog.mc   write a Chrome-trace-format profile
//                                     of the compile (+ debug session)
//   sldbc --debug-info=FILE prog.mc   write a DWARF-shaped JSON export of
//                                     the debug tables (line table,
//                                     per-var location lists and
//                                     availability ranges); FILE '-' means
//                                     stdout (and, under --emit=run, skip
//                                     execution so the JSON stands alone)
//   sldbc --stats prog.mc             print the Stats registry (stderr)
//   sldbc --debug prog.mc             interactive debugger (REPL)
//   sldbc --debug --degrade-all ...   force the fail-safe degraded path
//   sldbc --debug --cmd "b main 3" --cmd run --cmd scope prog.mc
//
// REPL commands:
//   b|break <func> <stmt>     set a breakpoint at a statement
//   run                       start the program
//   c|continue                resume after a breakpoint
//   s|step                    source-level step to the next statement
//                             boundary (starts paused if not running)
//   p|print <var>             classify + display one variable
//   explain <var>             provenance chain behind the classification
//   explainj <var>            the same, as one-line machine-readable JSON
//   scope                     classify + display all locals in scope
//   where                     current function / statement / address
//   stmts                     statement map of the current function
//   storage                   variable storage of the current function
//   out                       program output so far
//   q|quit                    exit
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"
#include "codegen/MachineIR.h"
#include "core/DebugInfo.h"
#include "core/Debugger.h"
#include "eval/CrossLevel.h"
#include "ir/IRGen.h"
#include "ir/IRPrinter.h"
#include "opt/Pass.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace sldb;

namespace {

struct Options {
  std::string InputFile;
  std::string BatchDir; ///< --batch: compile a whole corpus directory.
  std::string Emit = "run"; // run | ir | ir-opt | asm | stmts | debug.
  bool Optimize = true;
  bool Promote = true;
  bool Schedule = true;
  const LevelSpec *Level = nullptr; ///< --level=NAME overrides the above.
  bool SweepLevels = false;
  bool TimePasses = false;
  bool PassStats = false;
  bool VerifyEach = false;
  bool PrintStats = false;
  bool DegradeAll = false;
  std::string TraceJson;
  std::string DebugInfoFile; ///< --debug-info=FILE: DWARF-shaped export.
  std::uint64_t Fuel = 50'000'000;
  /// --batch input hardening: files larger than this are skipped, not
  /// compiled (a corpus directory is untrusted input).
  std::uint64_t MaxFileBytes = 1u << 20;
  /// --batch arena budget per module; 0 = unlimited.
  std::uint64_t ArenaLimit = 0;
  std::vector<std::string> ScriptedCommands;
};

void usage() {
  std::fprintf(stderr,
               "usage: sldbc [--emit=ir|ir-opt|asm|stmts|run] [-O0|-O2]\n"
               "             [--level=NAME] [--sweep-levels] [--batch DIR]\n"
               "             [--no-promote] [--no-schedule] [--debug]\n"
               "             [--time-passes] [--pass-stats] [--verify-each]\n"
               "             [--trace-json=FILE] [--debug-info=FILE|-]\n"
               "             [--stats] [--degrade-all]\n"
               "             [--fuel N] [--max-file-bytes N] [--arena-limit N]\n"
               "             [--cmd <repl-command>]... <file.mc>\n");
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--emit=", 0) == 0) {
      Opts.Emit = A.substr(7);
    } else if (A == "-O0") {
      Opts.Optimize = false;
    } else if (A == "-O2") {
      Opts.Optimize = true;
    } else if (A.rfind("--level=", 0) == 0) {
      Opts.Level = findLevel(A.substr(8));
      if (!Opts.Level) {
        std::fprintf(stderr, "unknown level '%s'; known levels:",
                     A.substr(8).c_str());
        for (const LevelSpec &S : pipelineLevels())
          std::fprintf(stderr, " %s", S.Name);
        std::fprintf(stderr, "\n");
        return false;
      }
    } else if (A == "--sweep-levels") {
      Opts.SweepLevels = true;
    } else if (A == "--batch") {
      if (++I >= Argc) {
        usage();
        return false;
      }
      Opts.BatchDir = Argv[I];
    } else if (A == "--no-promote") {
      Opts.Promote = false;
    } else if (A == "--no-schedule") {
      Opts.Schedule = false;
    } else if (A == "--time-passes") {
      Opts.TimePasses = true;
    } else if (A == "--pass-stats") {
      Opts.PassStats = true;
    } else if (A == "--verify-each") {
      Opts.VerifyEach = true;
    } else if (A.rfind("--trace-json=", 0) == 0) {
      Opts.TraceJson = A.substr(13);
      if (Opts.TraceJson.empty()) {
        std::fprintf(stderr, "--trace-json needs a file name\n");
        return false;
      }
    } else if (A.rfind("--debug-info=", 0) == 0) {
      Opts.DebugInfoFile = A.substr(13);
      if (Opts.DebugInfoFile.empty()) {
        std::fprintf(stderr, "--debug-info needs a file name\n");
        return false;
      }
    } else if (A == "--stats") {
      Opts.PrintStats = true;
    } else if (A == "--degrade-all") {
      Opts.DegradeAll = true;
    } else if (A == "--debug") {
      Opts.Emit = "debug";
    } else if (A == "--fuel") {
      if (++I >= Argc) {
        usage();
        return false;
      }
      char *End = nullptr;
      unsigned long long N = std::strtoull(Argv[I], &End, 10);
      if (!End || *End != '\0' || End == Argv[I] || N == 0) {
        std::fprintf(stderr, "--fuel needs a positive integer\n");
        return false;
      }
      Opts.Fuel = N;
    } else if (A == "--max-file-bytes" || A == "--arena-limit") {
      if (++I >= Argc) {
        usage();
        return false;
      }
      char *End = nullptr;
      unsigned long long N = std::strtoull(Argv[I], &End, 10);
      if (!End || *End != '\0' || End == Argv[I]) {
        std::fprintf(stderr, "%s needs an integer\n", A.c_str());
        return false;
      }
      (A == "--max-file-bytes" ? Opts.MaxFileBytes : Opts.ArenaLimit) = N;
    } else if (A == "--cmd") {
      if (++I >= Argc) {
        usage();
        return false;
      }
      Opts.ScriptedCommands.push_back(Argv[I]);
    } else if (A == "--help" || A == "-h") {
      usage();
      return false;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      usage();
      return false;
    } else {
      Opts.InputFile = A;
    }
  }
  if (Opts.InputFile.empty() && Opts.BatchDir.empty()) {
    usage();
    return false;
  }
  return true;
}

void printVarReport(const VarReport &R) {
  std::printf("  %-10s %-11s", R.Name.c_str(), varClassName(R.Class.Kind));
  if (R.HasValue) {
    if (R.IsDouble)
      std::printf(" = %g", R.DoubleValue);
    else
      std::printf(" = %lld", static_cast<long long>(R.IntValue));
    if (R.Class.Recoverable)
      std::printf("  [recovered]");
  }
  std::printf("\n");
  if (!R.Warning.empty())
    std::printf("             %s\n", R.Warning.c_str());
}

void printStmtMap(const MachineModule &MM, const MachineFunction &MF) {
  std::printf("statements of %s():\n", MF.Name.c_str());
  for (StmtId S = 0; S < MF.StmtAddr.size(); ++S) {
    const StmtInfo &SI = MM.Info->func(MF.Id).Stmts[S];
    if (MF.StmtAddr[S] >= 0)
      std::printf("  s%-3u line %-4u -> address %d\n", S, SI.Loc.Line,
                  MF.StmtAddr[S]);
    else
      std::printf("  s%-3u line %-4u -> (optimized away)\n", S,
                  SI.Loc.Line);
  }
}

void printStorage(const MachineModule &MM, const MachineFunction &MF) {
  std::printf("storage of %s():\n", MF.Name.c_str());
  for (VarId V : MM.Info->func(MF.Id).Locals) {
    auto It = MF.Storage.find(V);
    std::printf("  %-10s ", MM.Info->var(V).Name.c_str());
    if (It == MF.Storage.end() || It->second.K == VarStorage::Kind::None) {
      std::printf("no runtime storage\n");
      continue;
    }
    switch (It->second.K) {
    case VarStorage::Kind::InReg:
      std::printf("register %s\n", It->second.R.str().c_str());
      break;
    case VarStorage::Kind::Frame:
      std::printf("frame slot %d\n", It->second.Frame);
      break;
    default:
      std::printf("global memory\n");
    }
  }
}

int replLoop(Debugger &Dbg, const Options &Opts) {
  const MachineModule &MM = Dbg.module();
  std::printf("sldbc debugger — 'help' is the comment block at the top of "
              "tools/sldbc.cpp; 'q' quits\n");
  std::size_t ScriptPos = 0;
  bool Running = false;
  char Line[512];
  for (;;) {
    std::string Cmd;
    if (ScriptPos < Opts.ScriptedCommands.size()) {
      Cmd = Opts.ScriptedCommands[ScriptPos++];
      std::printf("(sldbc) %s\n", Cmd.c_str());
    } else {
      std::printf("(sldbc) ");
      std::fflush(stdout);
      if (!std::fgets(Line, sizeof(Line), stdin))
        return 0;
      Cmd = Line;
      while (!Cmd.empty() && (Cmd.back() == '\n' || Cmd.back() == '\r'))
        Cmd.pop_back();
    }
    std::istringstream In(Cmd);
    std::string Verb;
    In >> Verb;
    if (Verb.empty())
      continue;

    auto ReportStop = [&](StopReason R) {
      switch (R) {
      case StopReason::Breakpoint: {
        auto S = Dbg.currentStmt();
        std::printf("stopped in %s() at statement %d (address %u)\n",
                    MM.Funcs[Dbg.currentFunction()].Name.c_str(),
                    S ? static_cast<int>(*S) : -1,
                    Dbg.machine().pc().Local);
        break;
      }
      case StopReason::Exited:
        std::printf("program exited with value %lld\n",
                    static_cast<long long>(Dbg.machine().exitValue()));
        Running = false;
        break;
      case StopReason::Trapped:
        std::printf("program trapped: %s\n",
                    Dbg.machine().trapMessage().c_str());
        Running = false;
        break;
      case StopReason::StepLimit:
        std::printf("program stopped: %s\n",
                    Dbg.machine().trapMessage().c_str());
        Running = false;
        break;
      default:
        std::printf("stopped (%d)\n", static_cast<int>(R));
      }
    };

    if (Verb == "q" || Verb == "quit")
      return 0;
    if (Verb == "b" || Verb == "break") {
      std::string Func;
      unsigned Stmt = 0;
      In >> Func >> Stmt;
      FuncId F = MM.Info->findFunc(Func);
      if (F == InvalidFunc) {
        std::printf("no function '%s'\n", Func.c_str());
        continue;
      }
      if (Dbg.setBreakpointAtStmt(F, Stmt))
        std::printf("breakpoint at %s() statement %u\n", Func.c_str(),
                    Stmt);
      else
        std::printf("statement %u of %s() emitted no code\n", Stmt,
                    Func.c_str());
      continue;
    }
    if (Verb == "run") {
      Running = true;
      ReportStop(Dbg.run());
      continue;
    }
    if (Verb == "c" || Verb == "continue") {
      if (!Running) {
        std::printf("not running; use 'run'\n");
        continue;
      }
      ReportStop(Dbg.resume());
      continue;
    }
    if (Verb == "s" || Verb == "step") {
      if (!Running) {
        Running = true;
        ReportStop(Dbg.startPaused());
        continue;
      }
      ReportStop(Dbg.stepStmt());
      continue;
    }
    if (Verb == "p" || Verb == "print") {
      std::string Var;
      In >> Var;
      auto R = Dbg.queryVariable(Var);
      if (!R)
        std::printf("no variable '%s' in scope\n", Var.c_str());
      else
        printVarReport(*R);
      continue;
    }
    if (Verb == "explain" || Verb == "explainj") {
      std::string Var;
      In >> Var;
      auto E = Dbg.explainVariable(Var);
      if (!E)
        std::printf("no variable '%s' in scope\n", Var.c_str());
      else if (Verb == "explainj")
        std::printf("%s\n", Dbg.explainJson(*E).c_str());
      else
        std::printf("%s", Dbg.explainText(*E).c_str());
      continue;
    }
    if (Verb == "scope") {
      for (const VarReport &R : Dbg.reportScope())
        printVarReport(R);
      continue;
    }
    if (Verb == "where") {
      auto S = Dbg.currentStmt();
      std::printf("%s() statement %d, address %u, frame depth %zu\n",
                  MM.Funcs[Dbg.currentFunction()].Name.c_str(),
                  S ? static_cast<int>(*S) : -1,
                  Dbg.machine().pc().Local,
                  Dbg.machine().frameDepth() + 1);
      continue;
    }
    if (Verb == "stmts") {
      printStmtMap(MM, MM.Funcs[Dbg.currentFunction()]);
      continue;
    }
    if (Verb == "storage") {
      printStorage(MM, MM.Funcs[Dbg.currentFunction()]);
      continue;
    }
    if (Verb == "out") {
      std::printf("%s", Dbg.machine().outputText().c_str());
      continue;
    }
    std::printf("unknown command '%s'\n", Verb.c_str());
  }
}

/// Flushes the observability outputs on every exit path past argument
/// parsing: the Stats report to stderr, the collected trace to
/// --trace-json.  Returns the final exit status.
int finish(int RC, const Options &Opts) {
  if (Opts.PrintStats)
    std::fprintf(stderr, "%s", Stats::report().c_str());
  if (!Opts.TraceJson.empty() && !Trace::writeJsonFile(Opts.TraceJson)) {
    std::fprintf(stderr, "cannot write trace file '%s'\n",
                 Opts.TraceJson.c_str());
    if (RC == 0)
      RC = 1;
  }
  return RC;
}


/// --batch DIR: compiles every .mc file under DIR in one process.  One
/// arena backs each module's IR *and* machine code; it is reset after the
/// module is destroyed, so a corpus compile reuses the same few slabs
/// instead of re-growing the heap per program (DESIGN.md "IR memory model
/// & batch compilation").
int runBatch(const Options &Opts) {
  namespace fs = std::filesystem;
  // A corpus directory is untrusted input: walk *everything* in it and
  // decide per file, so junk (editor backups, oversized blobs, files we
  // cannot read) is diagnosed and skipped instead of silently ignored
  // or aborting the whole batch.
  std::vector<std::string> Files;
  std::error_code EC;
  for (fs::directory_iterator It(Opts.BatchDir, EC), End; !EC && It != End;
       It.increment(EC))
    if (It->is_regular_file())
      Files.push_back(It->path().string());
  if (EC) {
    std::fprintf(stderr, "cannot read directory '%s': %s\n",
                 Opts.BatchDir.c_str(), EC.message().c_str());
    return 2;
  }
  std::sort(Files.begin(), Files.end());
  if (Files.empty()) {
    std::fprintf(stderr, "no files under '%s'\n", Opts.BatchDir.c_str());
    return 2;
  }

  const OptOptions PassSet =
      Opts.Level ? Opts.Level->Opts : OptOptions::all();
  const bool Promote = Opts.Level ? Opts.Level->Promote : Opts.Promote;

  Arena BatchArena(1 << 20);
  BatchArena.setLimit(Opts.ArenaLimit);
  unsigned Ok = 0, Failed = 0, Skipped = 0;
  for (const std::string &Path : Files) {
    if (fs::path(Path).extension() != ".mc") {
      std::printf("%s: skipped: not a .mc file\n", Path.c_str());
      ++Skipped;
      continue;
    }
    std::error_code SizeEC;
    std::uintmax_t Size = fs::file_size(Path, SizeEC);
    if (!SizeEC && Opts.MaxFileBytes && Size > Opts.MaxFileBytes) {
      std::printf("%s: skipped: %llu bytes exceeds --max-file-bytes %llu\n",
                  Path.c_str(), static_cast<unsigned long long>(Size),
                  static_cast<unsigned long long>(Opts.MaxFileBytes));
      ++Skipped;
      continue;
    }
    std::ifstream File(Path);
    std::stringstream Buf;
    Buf << File.rdbuf();
    if (!File) {
      std::printf("%s: skipped: cannot read\n", Path.c_str());
      ++Skipped;
      continue;
    }
    {
      DiagnosticEngine Diags;
      auto Module = compileToIR(Buf.str(), Diags, &BatchArena);
      std::string Err;
      std::uint32_t Instrs = 0;
      if (!Module) {
        Err = Diags.str();
        if (!Err.empty() && Err.back() == '\n')
          Err.pop_back();
      } else {
        if (Opts.Optimize || Opts.Level) {
          Status PS = runPipelineEx(*Module, PassSet, PipelineConfig());
          if (!PS.ok())
            Err = PS.str();
        }
        if (Err.empty()) {
          CodegenOptions CG;
          CG.PromoteVars = Promote;
          CG.Schedule = Opts.Schedule;
          Expected<MachineModule> MME =
              compileToMachineE(*Module, CG, &BatchArena);
          if (!MME)
            Err = MME.status().str();
          else
            for (const MachineFunction &F : MME->Funcs)
              Instrs += F.numInstrs();
        }
      }
      // The arena's soft budget is sticky until reset: any allocation
      // past --arena-limit during this module fails it here, at the
      // module boundary, without poisoning its neighbours.
      if (Err.empty() && BatchArena.limitExceeded())
        Err = "resource-exhausted: arena budget (" +
              std::to_string(Opts.ArenaLimit) + " bytes) exceeded";
      if (Err.empty()) {
        std::printf("%s: ok (%u machine instrs)\n", Path.c_str(), Instrs);
        ++Ok;
      } else {
        std::printf("%s: error: %s\n", Path.c_str(), Err.c_str());
        ++Failed;
      }
      // Module (and MME's buffers) die here; the arena memory survives...
    }
    BatchArena.reset(); // ...and is recycled for the next program.
  }
  std::printf("batch: %u ok, %u failed, %u skipped, %zu KB arena reserved "
              "across %zu slabs\n",
              Ok, Failed, Skipped, BatchArena.bytesReserved() / 1024,
              BatchArena.numSlabs());
  // Skips are survivable but not silent: the exit code says "look at
  // the summary", while every file that could compile still did.
  return (Failed || Skipped) ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;
  if (!Opts.TraceJson.empty()) {
    if (!Trace::compiledIn())
      std::fprintf(stderr,
                   "note: tracing compiled out (SLDB_TRACE=OFF); '%s' will "
                   "hold an empty trace\n",
                   Opts.TraceJson.c_str());
    Trace::enable();
  }

  if (!Opts.BatchDir.empty())
    return finish(runBatch(Opts), Opts);

  std::ifstream File(Opts.InputFile);
  if (!File) {
    std::fprintf(stderr, "cannot open '%s'\n", Opts.InputFile.c_str());
    return finish(2, Opts);
  }
  std::stringstream Buf;
  Buf << File.rdbuf();
  std::string Source = Buf.str();

  if (Opts.SweepLevels) {
    ProgramSweep PS = sweepProgram(Opts.InputFile, Source);
    if (!PS.Compiled) {
      std::fprintf(stderr, "%s\n", PS.CompileError.c_str());
      return finish(1, Opts);
    }
    CrossLevelReport R;
    R.Levels = std::move(PS.Levels);
    R.Regressions = std::move(PS.Regressions);
    R.Programs = 1;
    std::printf("%s", renderSweepReport(R).c_str());
    return finish(0, Opts);
  }

  DiagnosticEngine Diags;
  auto Module = compileToIR(Source, Diags);
  if (!Module) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return finish(1, Opts);
  }

  if (Opts.Emit == "ir") {
    std::printf("%s", printModule(*Module).c_str());
    return finish(0, Opts);
  }

  // A named level pins both the pass set and the promotion mode.
  const OptOptions PassSet =
      Opts.Level ? Opts.Level->Opts : OptOptions::all();
  if (Opts.Level)
    Opts.Promote = Opts.Level->Promote;

  if (Opts.Optimize || Opts.Level) {
    if (Opts.TimePasses || Opts.PassStats || Opts.VerifyEach) {
      PipelineConfig Config = PipelineConfig::fromEnvironment();
      Config.TimePasses |= Opts.TimePasses;
      Config.VerifyEach |= Opts.VerifyEach;
      PipelineStats Stats;
      Status PS = runPipelineEx(*Module, PassSet, Config, &Stats);
      if (!PS.ok()) {
        std::fprintf(stderr, "error: %s\n", PS.str().c_str());
        return finish(1, Opts);
      }
      if (Opts.TimePasses || Opts.PassStats) {
        std::fprintf(stderr, "%-45s %6s %8s", "pass", "runs", "changed");
        if (Opts.TimePasses)
          std::fprintf(stderr, " %9s", "wall-ms");
        std::fprintf(stderr, "\n");
        for (const PassSlotStats &S : Stats.Slots) {
          std::fprintf(stderr, "%-45s %6u %8u", S.Name.c_str(), S.Runs,
                       S.Changed);
          if (Opts.TimePasses)
            std::fprintf(stderr, " %9.3f", S.WallMs);
          std::fprintf(stderr, "\n");
        }
        if (Opts.TimePasses)
          std::fprintf(stderr, "%-45s %6s %8s %9.3f\n", "total", "", "",
                       Stats.TotalMs);
      }
      if (Opts.PassStats) {
        std::fprintf(stderr, "analysis cache:\n");
        for (unsigned ID = 0; ID < NumAnalysisIDs; ++ID) {
          std::uint64_t H = Stats.Analyses.Hits[ID];
          std::uint64_t M = Stats.Analyses.Misses[ID];
          if (H + M == 0)
            continue;
          std::fprintf(stderr,
                       "  %-14s %8llu hits %8llu misses (%.1f%%)\n",
                       analysisName(static_cast<AnalysisID>(ID)),
                       static_cast<unsigned long long>(H),
                       static_cast<unsigned long long>(M),
                       100.0 * static_cast<double>(H) /
                           static_cast<double>(H + M));
        }
      }
    } else {
      Status PS = runPipelineEx(*Module, PassSet, PipelineConfig());
      if (!PS.ok()) {
        std::fprintf(stderr, "error: %s\n", PS.str().c_str());
        return finish(1, Opts);
      }
    }
  }

  if (Opts.Emit == "ir-opt") {
    std::printf("%s", printModule(*Module).c_str());
    return finish(0, Opts);
  }

  CodegenOptions CG;
  CG.PromoteVars = Opts.Promote;
  CG.Schedule = Opts.Schedule;
  Expected<MachineModule> MME = compileToMachineE(*Module, CG);
  if (!MME) {
    std::fprintf(stderr, "error: %s\n", MME.status().str().c_str());
    return finish(1, Opts);
  }
  MachineModule &MM = *MME;

  if (!Opts.DebugInfoFile.empty()) {
    if (Opts.DebugInfoFile == "-") {
      std::printf("%s", renderDebugInfo(MM).c_str());
      if (Opts.Emit == "run")
        return finish(0, Opts);
    } else if (!writeDebugInfoFile(MM, Opts.DebugInfoFile)) {
      std::fprintf(stderr, "cannot write debug info file '%s'\n",
                   Opts.DebugInfoFile.c_str());
      return finish(1, Opts);
    }
  }

  if (Opts.Emit == "asm") {
    for (const MachineFunction &F : MM.Funcs)
      std::printf("%s\n", printMachineFunction(F, MM.Info).c_str());
    return finish(0, Opts);
  }
  if (Opts.Emit == "stmts") {
    for (const MachineFunction &F : MM.Funcs)
      printStmtMap(MM, F);
    return finish(0, Opts);
  }

  if (Opts.Emit == "debug") {
    Debugger Dbg(MM, Opts.Fuel);
    if (Opts.DegradeAll)
      Dbg.degradeAllVariables();
    return finish(replLoop(Dbg, Opts), Opts);
  }

  // Default: run to completion.
  Machine VM(MM, Opts.Fuel);
  StopReason R = VM.run();
  std::printf("%s", VM.outputText().c_str());
  if (R == StopReason::Trapped || R == StopReason::StepLimit) {
    std::fprintf(stderr, "trap: %s\n", VM.trapMessage().c_str());
    return finish(1, Opts);
  }
  std::fprintf(stderr, "[%llu instructions, exit %lld]\n",
               static_cast<unsigned long long>(VM.instrCount()),
               static_cast<long long>(VM.exitValue()));
  return finish(static_cast<int>(VM.exitValue() & 0xff), Opts);
}
