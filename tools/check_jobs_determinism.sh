#!/usr/bin/env sh
# Asserts the parallel-campaign determinism contract end to end: the
# sldb-fuzz report on stdout must be byte-identical for --jobs 1 and
# --jobs 8, for the differential campaign, the fault-injection matrix,
# and the stepping / cross-level quality oracles.  Worker stats go to
# stderr precisely so this comparison stays meaningful.  Registered as
# the tier-1 ctest `fuzz_jobs_determinism`.
#
# Usage: tools/check_jobs_determinism.sh <path-to-sldb-fuzz> [count]

set -e

FUZZ=${1:?usage: check_jobs_determinism.sh <path-to-sldb-fuzz> [count]}
COUNT=${2:-25}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/sldb-jobs-det.XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

FAIL=0

# Differential campaign.
"$FUZZ" --seed 1 --count "$COUNT" --no-write --no-shrink \
  --jobs 1 >"$TMP/clean-j1.txt"
"$FUZZ" --seed 1 --count "$COUNT" --no-write --no-shrink \
  --jobs 8 >"$TMP/clean-j8.txt"
if ! cmp -s "$TMP/clean-j1.txt" "$TMP/clean-j8.txt"; then
  echo "error: campaign report differs between --jobs 1 and --jobs 8:" >&2
  diff -u "$TMP/clean-j1.txt" "$TMP/clean-j8.txt" >&2 || true
  FAIL=1
fi

# Fault-injection matrix, in-process (the isolated path is exercised by
# fuzz_inject; in-process keeps this test fast and covers the
# thread-confined FaultInjector arming directly).
"$FUZZ" --inject --no-isolate --seed 1 --count 5 --no-write --no-shrink \
  --jobs 1 >"$TMP/inject-j1.txt"
"$FUZZ" --inject --no-isolate --seed 1 --count 5 --no-write --no-shrink \
  --jobs 8 >"$TMP/inject-j8.txt"
if ! cmp -s "$TMP/inject-j1.txt" "$TMP/inject-j8.txt"; then
  echo "error: inject report differs between --jobs 1 and --jobs 8:" >&2
  diff -u "$TMP/inject-j1.txt" "$TMP/inject-j8.txt" >&2 || true
  FAIL=1
fi

# Stepping oracle.
"$FUZZ" --oracle=step --seed 1 --count "$COUNT" --no-write --no-shrink \
  --jobs 1 >"$TMP/step-j1.txt"
"$FUZZ" --oracle=step --seed 1 --count "$COUNT" --no-write --no-shrink \
  --jobs 8 >"$TMP/step-j8.txt"
if ! cmp -s "$TMP/step-j1.txt" "$TMP/step-j8.txt"; then
  echo "error: step report differs between --jobs 1 and --jobs 8:" >&2
  diff -u "$TMP/step-j1.txt" "$TMP/step-j8.txt" >&2 || true
  FAIL=1
fi

# Cross-level sweep (small slice: each seed costs 16 classifications
# plus a lockstep run per judgeable level).
"$FUZZ" --oracle=crosslevel --seed 1 --count 8 --no-write --no-shrink \
  --jobs 1 >"$TMP/xl-j1.txt"
"$FUZZ" --oracle=crosslevel --seed 1 --count 8 --no-write --no-shrink \
  --jobs 8 >"$TMP/xl-j8.txt"
if ! cmp -s "$TMP/xl-j1.txt" "$TMP/xl-j8.txt"; then
  echo "error: crosslevel report differs between --jobs 1 and --jobs 8:" >&2
  diff -u "$TMP/xl-j1.txt" "$TMP/xl-j8.txt" >&2 || true
  FAIL=1
fi

# SSA-tier level campaign: the bracket passes must keep the same
# determinism contract (the phi workset and edge splitting are per-unit
# state, so any cross-worker leak shows up as a report diff here).
"$FUZZ" --level O2nl-ssa --seed 1 --count "$COUNT" --no-write --no-shrink \
  --jobs 1 >"$TMP/ssa-j1.txt"
"$FUZZ" --level O2nl-ssa --seed 1 --count "$COUNT" --no-write --no-shrink \
  --jobs 8 >"$TMP/ssa-j8.txt"
if ! cmp -s "$TMP/ssa-j1.txt" "$TMP/ssa-j8.txt"; then
  echo "error: O2nl-ssa report differs between --jobs 1 and --jobs 8:" >&2
  diff -u "$TMP/ssa-j1.txt" "$TMP/ssa-j8.txt" >&2 || true
  FAIL=1
fi

# Stepping oracle at an SSA level.
"$FUZZ" --oracle=step --level gvn --seed 1 --count "$COUNT" --no-write \
  --no-shrink --jobs 1 >"$TMP/step-ssa-j1.txt"
"$FUZZ" --oracle=step --level gvn --seed 1 --count "$COUNT" --no-write \
  --no-shrink --jobs 8 >"$TMP/step-ssa-j8.txt"
if ! cmp -s "$TMP/step-ssa-j1.txt" "$TMP/step-ssa-j8.txt"; then
  echo "error: gvn step report differs between --jobs 1 and --jobs 8:" >&2
  diff -u "$TMP/step-ssa-j1.txt" "$TMP/step-ssa-j8.txt" >&2 || true
  FAIL=1
fi

# Sharding composes with --jobs: three shards of the same campaign must
# partition the seed range exactly (programs sum = count).
TOTAL=0
for I in 0 1 2; do
  "$FUZZ" --seed 1 --count "$COUNT" --no-write --no-shrink \
    --jobs 2 --shard "$I/3" >"$TMP/shard-$I.txt"
  N=$(sed -n 's/^programs: *\([0-9]*\).*/\1/p' "$TMP/shard-$I.txt")
  TOTAL=$((TOTAL + N))
done
if [ "$TOTAL" -ne "$COUNT" ]; then
  echo "error: shards cover $TOTAL programs, expected $COUNT" >&2
  FAIL=1
fi

exit $FAIL
