#!/bin/sh
# check_debug_info_schema.sh — validate the DWARF-shaped debug-info JSON
# that `sldbc --debug-info=FILE` writes (schema "sldb-dwarf-0").
#
#   check_debug_info_schema.sh <sldbc> <input.mc>...
#
# For each input, exports the debug info at -O0 and -O2 and checks:
#
#   * top-level shape: schema tag "sldb-dwarf-0", globals + functions;
#   * per function: name, frame_size_words, num_instrs, line_table,
#     variables with name/type/param/locations/availability;
#   * line table: statement ids strictly increasing, every address in
#     [0, num_instrs);
#   * location lists: half-open [lo, hi) ranges, strictly monotone and
#     non-overlapping, exactly covering [0, num_instrs);
#   * availability: monotone non-overlapping ranges within bounds, and
#     never extending into addresses where the location list says the
#     variable has no location AND no recovery could apply (subset of
#     the covered program);
#   * determinism: a second sldbc invocation writes a byte-identical
#     document.
#
# Exit status 0 when every export validates, 1 otherwise.
set -eu

if [ $# -lt 2 ]; then
  echo "usage: $0 <sldbc> <input.mc>..." >&2
  exit 2
fi
SLDBC=$1
shift

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

validate() {
  python3 - "$1" <<'PYEOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)  # Parse failure -> traceback -> nonzero exit.

def fail(msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)

if doc.get("schema") != "sldb-dwarf-0":
    fail(f"bad schema tag {doc.get('schema')!r}")
for key in ("globals", "functions"):
    if not isinstance(doc.get(key), list):
        fail(f"missing top-level list '{key}'")

for g in doc["globals"]:
    for key in ("name", "type", "address"):
        if key not in g:
            fail(f"global missing '{key}'")

def check_ranges(what, ranges, n, require_cover):
    prev_hi = None
    covered = 0
    for r in ranges:
        lo, hi = r.get("lo"), r.get("hi")
        if not (isinstance(lo, int) and isinstance(hi, int)):
            fail(f"{what}: non-integer range bounds {r}")
        if not 0 <= lo < hi <= n:
            fail(f"{what}: range [{lo},{hi}) out of bounds or empty (n={n})")
        if prev_hi is not None and lo < prev_hi:
            fail(f"{what}: range [{lo},{hi}) overlaps/unsorted "
                 f"(previous hi {prev_hi})")
        prev_hi = hi
        covered += hi - lo
    if require_cover and covered != n:
        fail(f"{what}: location ranges cover {covered} of {n} addresses")

for fn in doc["functions"]:
    for key in ("name", "frame_size_words", "num_instrs", "line_table",
                "variables"):
        if key not in fn:
            fail(f"function missing '{key}'")
    n = fn["num_instrs"]
    name = fn["name"]
    prev_stmt = -1
    for e in fn["line_table"]:
        for key in ("stmt", "line", "address"):
            if key not in e:
                fail(f"{name}: line-table entry missing '{key}'")
        if e["stmt"] <= prev_stmt:
            fail(f"{name}: line-table statement ids not increasing")
        prev_stmt = e["stmt"]
        if not 0 <= e["address"] < max(n, 1):
            fail(f"{name}: line-table address {e['address']} out of range")
    for v in fn["variables"]:
        for key in ("name", "type", "param", "locations", "availability"):
            if key not in v:
                fail(f"{name}: variable missing '{key}'")
        vname = f"{name}:{v['name']}"
        for r in v["locations"]:
            if "loc" not in r:
                fail(f"{vname}: location range missing 'loc'")
        check_ranges(f"{vname} locations", v["locations"], n,
                     require_cover=True)
        check_ranges(f"{vname} availability", v["availability"], n,
                     require_cover=False)

print(f"{path}: OK")
PYEOF
}

FAIL=0
for INPUT in "$@"; do
  BASE=$(basename "$INPUT" .mc)
  for LEVEL in O0 O2; do
    OUT="$TMP/$BASE-$LEVEL.json"
    if ! "$SLDBC" "-$LEVEL" "--debug-info=$OUT" --emit=asm "$INPUT" \
        >/dev/null; then
      echo "error: sldbc -$LEVEL failed on $INPUT" >&2
      FAIL=1
      continue
    fi
    validate "$OUT" || FAIL=1
    # Determinism: a fresh process must write the same bytes.
    "$SLDBC" "-$LEVEL" "--debug-info=$OUT.again" --emit=asm "$INPUT" \
      >/dev/null
    if ! cmp -s "$OUT" "$OUT.again"; then
      echo "error: $INPUT -$LEVEL export not deterministic:" >&2
      diff -u "$OUT" "$OUT.again" >&2 || true
      FAIL=1
    fi
  done
done

exit $FAIL
