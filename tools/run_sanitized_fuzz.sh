#!/usr/bin/env sh
# Configures a sanitized build tree (CMake presets `asan-ubsan` /
# `tsan`), builds the fuzzing driver, and runs a modest differential
# campaign, a fault-injection slice, and small stepping / cross-level
# oracle slices under the chosen sanitizers.
# Registered as the tier-1 ctests `fuzz_diff_sanitized` (address +
# undefined) and `fuzz_parallel_tsan` (thread); any sanitizer report
# aborts the driver, which the campaign's fork isolation surfaces as a
# process crash and the driver turns into a nonzero exit.
#
# Usage: tools/run_sanitized_fuzz.sh [repo-root] [count] [sanitizers] [suite]
#   sanitizers: "address,undefined" (default) or "thread"
#   suite:      "fuzz" (default) or "service" — the classification
#               daemon driven by sldb-load at --jobs 4, with and
#               without an armed fault point (ctest `service_tsan`)

set -e

ROOT=${1:-$(cd "$(dirname "$0")/.." && pwd)}
COUNT=${2:-50}
SAN=${3:-address,undefined}
SUITE=${4:-fuzz}
JOBS=$(nproc 2>/dev/null || echo 4)

case "$SAN" in
  thread) BUILD="$ROOT/build-tsan" ;;
  *) BUILD="$ROOT/build-asan-ubsan" ;;
esac

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSLDB_SANITIZE="$SAN" >/dev/null

if [ "$SUITE" = service ]; then
  # Service suite: the daemon's batch worker pool, per-function cache
  # locks, watchdog thread, and the deferred-quarantine handoff all race
  # under the chosen sanitizer while sldb-load hammers a pipe.
  cmake --build "$BUILD" --target sldbd sldb-load -j "$JOBS" >/dev/null
  SANOPTS=halt_on_error=1
  TSAN_OPTIONS=$SANOPTS UBSAN_OPTIONS=$SANOPTS \
    "$BUILD/tools/sldb-load" --spawn "$BUILD/tools/sldbd" --jobs 4 \
    --sessions 3 --modules 2 --queries 60 --expect-sound
  # Same workload with a defended fault armed: loads quarantine, every
  # query after that exercises the degraded path concurrently.
  TSAN_OPTIONS=$SANOPTS UBSAN_OPTIONS=$SANOPTS \
    "$BUILD/tools/sldb-load" --spawn "$BUILD/tools/sldbd" --jobs 4 \
    --inject truncate-stmt-map --inject-seed 3 \
    --sessions 3 --modules 2 --queries 60 --expect-sound
  # Tiny queue depth: admission control / shed-retry under the races.
  TSAN_OPTIONS=$SANOPTS UBSAN_OPTIONS=$SANOPTS \
    "$BUILD/tools/sldb-load" --spawn "$BUILD/tools/sldbd" --jobs 4 \
    --queue-depth 8 --sessions 2 --modules 1 --queries 40 --expect-sound
  exit 0
fi

cmake --build "$BUILD" --target sldb-fuzz sldbc -j "$JOBS" >/dev/null

if [ "$SAN" = thread ]; then
  # A parallel campaign and an in-process parallel injection slice: the
  # point is racing real worker threads over the pipeline, the merge
  # accumulators, and the thread_local FaultInjector state.
  # halt_on_error turns the first race into a nonzero exit.
  TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --seed 1 --count "$COUNT" --jobs 4 \
    --no-write --no-shrink
  TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --inject --no-isolate --seed 1 --count 5 \
    --jobs 4 --no-write --no-shrink
  TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --oracle=step --seed 1 --count 10 --jobs 4 \
    --no-write --no-shrink
  TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --oracle=crosslevel --seed 1 --count 4 \
    --jobs 4 --no-write --no-shrink
  # SSA-tier slice: the construct/GVN/sparse/destruct bracket racing
  # across the pool (the bracket allocates phis and edge-split blocks,
  # so arena and analysis-cache handoff get fresh coverage here).
  TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --level O2nl-ssa --seed 1 --count "$COUNT" \
    --jobs 4 --no-write --no-shrink
  TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --oracle=step --level gvn --seed 1 --count 10 \
    --jobs 4 --no-write --no-shrink
  # Aliasing-grammar slice: arrays/pointers/indirect stores racing
  # through the pool (Load/Store lowering and the alias analysis cache
  # get their thread coverage here).
  TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --alias --seed 1 --count "$COUNT" --jobs 4 \
    --no-write --no-shrink
else
  # halt_on_error makes UBSan reports fatal even where
  # -fno-sanitize-recover is not honored; leak checking stays on
  # (default).
  UBSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --seed 1 --count "$COUNT" --no-write \
    --no-shrink

  # A small injection slice: every defended fault point under
  # sanitizers.  In-process (no fork) so ASan sees the whole run in one
  # address space and leaks/overflows are attributed to the faulty path
  # directly.
  UBSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --inject --no-isolate --seed 1 --count 10 \
    --no-write --no-shrink

  # Arena/batch slice: compile the checked-in corpus in one process.
  # --batch resets the module arena between files, so ASan catches any
  # use-after-reset or slab-lifetime bug in the IR memory model.
  UBSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldbc" --batch "$ROOT/tests/inputs"

  # Quality-oracle slices: the stepping oracle drives the new
  # single-instruction stepping path, and the cross-level sweep runs the
  # whole pipeline lattice, so both get sanitizer coverage too.
  UBSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --oracle=step --seed 1 --count 15 \
    --no-write --no-shrink
  UBSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --oracle=crosslevel --seed 1 --count 5 \
    --no-write --no-shrink

  # SSA-tier slices: the bracket's phi insertion/edge splitting and the
  # sparse passes under ASan/UBSan, at the judgeable SSA levels.
  UBSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --level O2nl-ssa --seed 1 --count "$COUNT" \
    --no-write --no-shrink
  UBSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --oracle=step --level sparse --seed 1 \
    --count 15 --no-write --no-shrink
  UBSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --inject --no-isolate --level O2nl-ssa \
    --seed 1 --count 5 --no-write --no-shrink

  # Aliasing-grammar slices: arrays, pointers, and indirect stores under
  # ASan/UBSan — frame-relative Load/Store lowering, pointer arithmetic,
  # and the alias-aware kill paths in every pass, at the default set and
  # the full SSA bracket.
  UBSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --alias --seed 1 --count "$COUNT" \
    --no-write --no-shrink
  UBSAN_OPTIONS=halt_on_error=1 \
    "$BUILD/tools/sldb-fuzz" --alias --level O2nl-ssa --seed 1 \
    --count 25 --no-write --no-shrink
fi
