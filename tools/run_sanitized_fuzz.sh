#!/usr/bin/env sh
# Configures the asan-ubsan tree (build-asan-ubsan/, see the CMake preset
# of the same name), builds the fuzzing driver, and runs a modest
# differential campaign plus a fault-injection slice under
# AddressSanitizer + UBSan.  Registered as the tier-1 ctest
# `fuzz_diff_sanitized`; any sanitizer report aborts the driver, which
# the campaign's fork isolation surfaces as a process crash and the
# driver turns into a nonzero exit.
#
# Usage: tools/run_sanitized_fuzz.sh [repo-root] [count]

set -e

ROOT=${1:-$(cd "$(dirname "$0")/.." && pwd)}
COUNT=${2:-50}
BUILD="$ROOT/build-asan-ubsan"
JOBS=$(nproc 2>/dev/null || echo 4)

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSLDB_SANITIZE=address,undefined >/dev/null
cmake --build "$BUILD" --target sldb-fuzz -j "$JOBS" >/dev/null

# halt_on_error makes UBSan reports fatal even where
# -fno-sanitize-recover is not honored; leak checking stays on (default).
UBSAN_OPTIONS=halt_on_error=1 \
  "$BUILD/tools/sldb-fuzz" --seed 1 --count "$COUNT" --no-write --no-shrink

# A small injection slice: every defended fault point under sanitizers.
# In-process (no fork) so ASan sees the whole run in one address space
# and leaks/overflows are attributed to the faulty path directly.
UBSAN_OPTIONS=halt_on_error=1 \
  "$BUILD/tools/sldb-fuzz" --inject --no-isolate --seed 1 --count 10 \
  --no-write --no-shrink
