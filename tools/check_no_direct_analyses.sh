#!/usr/bin/env bash
# Structural guard for the analysis-manager refactor: no pass and no core
# debugger component may construct an IR analysis directly — everything
# goes through AnalysisManager::getResult so caching and invalidation
# stay sound.  Registered as a ctest (see tests/CMakeLists.txt); run from
# the repository root.
#
# Scope: src/opt and src/core.  src/analysis is exempt (the manager and
# the analyses themselves live there), and so are tests (unit tests of an
# analysis construct it on purpose).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# Stack/heap construction of an analysis type: "CFGContext CFG(F)",
# "auto X = CFGContext(...)", "make_unique<Dominators>", "new Liveness".
TYPES='CFGContext|Dominators|PostDominators|LoopInfo|ValueIndex|Liveness|ReachingDefs|DomFrontiers|SsaDefUse'
PATTERN="\b($TYPES)[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*\(|make_unique<[[:space:]]*($TYPES)[[:space:]]*>|new[[:space:]]+($TYPES)\b|=[[:space:]]*($TYPES)[[:space:]]*\("

VIOLATIONS=$(grep -rEn "$PATTERN" src/opt src/core --include='*.cpp' --include='*.h' | grep -v '^\s*//' || true)

if [ -n "$VIOLATIONS" ]; then
  echo "error: direct analysis construction outside the AnalysisManager:" >&2
  echo "$VIOLATIONS" >&2
  echo "use AM.getResult<...>(F) instead (see src/analysis/AnalysisManager.h)" >&2
  exit 1
fi
echo "OK: src/opt and src/core construct no IR analysis directly"
