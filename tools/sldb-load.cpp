//===- tools/sldb-load.cpp - Load generator / soak driver -------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `sldb-load` — replays deterministic query streams (fuzz/QueryGen.h)
/// against an `sldbd`, either spawned over pipes (`--spawn`) or reached
/// through its unix socket (`--socket`, with `--concurrency` client
/// threads each on its own connection and session range).
///
/// The robustness-envelope contract is exercised end to end: shed
/// responses are retried with exponential backoff seeded from the
/// daemon's retry-after hint; a response that takes longer than
/// `--hang-timeout-ms` is a *hang* (exit 3); `--expect-sound` fails the
/// run (exit 1) on any malformed response or a nonzero `unsound`
/// counter in the daemon's final `stats` answer.  `--duration N` turns
/// one replay into an N-second soak, iterating fresh streams.
///
/// Reports a latency histogram (per-batch round trips) plus response
/// counts.
///
//===----------------------------------------------------------------------===//

#include "fuzz/QueryGen.h"
#include "support/Interrupt.h"
#include "support/Percentiles.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace sldb;

namespace {

std::uint64_t nowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Options {
  std::string Spawn;      ///< Path to sldbd (pipe mode).
  std::string Socket;     ///< Daemon socket path (socket mode).
  std::vector<std::string> DaemonArgs; ///< Forwarded after --spawn.
  unsigned Sessions = 4;
  unsigned Modules = 2;
  unsigned Queries = 100;
  std::uint32_t Seed = 1;
  std::uint64_t ShuffleSeed = 0;
  unsigned Concurrency = 1;
  unsigned Qps = 0;           ///< Requests/sec pacing; 0 = full speed.
  unsigned DurationSec = 0;   ///< Soak; 0 = one stream.
  unsigned HangTimeoutMs = 30'000;
  bool ExpectSound = false;
  bool Quiet = false;
};

/// Counts and latency samples for one client; merged for the report.
struct ClientStats {
  std::uint64_t Ok = 0, Err = 0, Shed = 0, Retries = 0, Malformed = 0;
  std::uint64_t Batches = 0;
  std::vector<std::uint64_t> LatencyUs; ///< One sample per batch.
  bool Hang = false;
  std::uint64_t Unsound = 0; ///< From the final stats response.
};

/// A line-framed bidirectional channel (pipe pair or connected socket).
struct Channel {
  int RdFd = -1, WrFd = -1;
  std::string Buf;

  bool writeAll(const std::string &S) {
    std::size_t Off = 0;
    while (Off < S.size()) {
      ssize_t W = ::write(WrFd, S.data() + Off, S.size() - Off);
      if (W <= 0) {
        if (W < 0 && errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<std::size_t>(W);
    }
    return true;
  }

  /// Reads lines until the blank batch terminator.  Returns false on
  /// EOF/error; sets \p TimedOut when the hang timeout expires first.
  bool readBatch(std::vector<std::string> &Lines, unsigned TimeoutMs,
                 bool &TimedOut) {
    TimedOut = false;
    const std::uint64_t Deadline = nowUs() + std::uint64_t(TimeoutMs) * 1000;
    for (;;) {
      // Drain complete lines already buffered.
      std::size_t Pos;
      while ((Pos = Buf.find('\n')) != std::string::npos) {
        std::string Line = Buf.substr(0, Pos);
        Buf.erase(0, Pos + 1);
        if (!Line.empty() && Line.back() == '\r')
          Line.pop_back();
        if (Line.empty())
          return true; // Batch terminator.
        Lines.push_back(std::move(Line));
      }
      std::uint64_t Now = nowUs();
      if (TimeoutMs && Now >= Deadline) {
        TimedOut = true;
        return false;
      }
      pollfd P = {RdFd, POLLIN, 0};
      int Timeout =
          TimeoutMs ? static_cast<int>((Deadline - Now) / 1000 + 1) : -1;
      int N = ::poll(&P, 1, Timeout);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      if (N == 0) {
        TimedOut = true;
        return false;
      }
      char Tmp[4096];
      ssize_t R = ::read(RdFd, Tmp, sizeof(Tmp));
      if (R <= 0)
        return false;
      Buf.append(Tmp, static_cast<std::size_t>(R));
    }
  }
};

/// Classifies a response line; returns false when malformed.
bool classifyResponse(const std::string &Line, ClientStats &CS,
                      std::string *Payload = nullptr) {
  std::string_view S = Line;
  if (!S.empty() && S[0] == '@') {
    std::size_t Sp = S.find(' ');
    if (Sp == std::string_view::npos) {
      ++CS.Malformed;
      return false;
    }
    S.remove_prefix(Sp + 1);
  }
  if (S.rfind("ok", 0) == 0 && (S.size() == 2 || S[2] == ' ')) {
    ++CS.Ok;
    if (Payload)
      *Payload = std::string(S.size() > 3 ? S.substr(3) : "");
    return true;
  }
  if (S.rfind("err ", 0) == 0) {
    ++CS.Err;
    return true;
  }
  if (S.rfind("shed retry-after-ms=", 0) == 0) {
    ++CS.Shed;
    return true;
  }
  ++CS.Malformed;
  return false;
}

std::uint32_t shedRetryAfterMs(const std::string &Line) {
  std::size_t Pos = Line.find("retry-after-ms=");
  if (Pos == std::string::npos)
    return 50;
  return static_cast<std::uint32_t>(
      std::strtoul(Line.c_str() + Pos + 15, nullptr, 10));
}

/// Sends one batch, awaits its responses, retries shed requests with
/// exponential backoff.  Returns false on hang/EOF.
bool runBatch(Channel &Ch, std::vector<std::string> Lines, const Options &O,
              ClientStats &CS) {
  for (unsigned Attempt = 0; !Lines.empty() && Attempt < 8; ++Attempt) {
    std::string Out;
    for (const std::string &L : Lines) {
      Out += L;
      Out += '\n';
    }
    Out += '\n';
    const std::uint64_t T0 = nowUs();
    if (!Ch.writeAll(Out))
      return false;
    std::vector<std::string> Resp;
    bool TimedOut = false;
    if (!Ch.readBatch(Resp, O.HangTimeoutMs, TimedOut)) {
      CS.Hang = TimedOut;
      return false;
    }
    CS.LatencyUs.push_back(nowUs() - T0);
    ++CS.Batches;

    // Pair responses to requests by index; collect shed ones to retry.
    std::vector<std::string> Retry;
    std::uint32_t RetryAfter = 0;
    for (std::size_t I = 0; I < Resp.size(); ++I) {
      classifyResponse(Resp[I], CS);
      if (Resp[I].find("shed retry-after-ms=") != std::string::npos &&
          I < Lines.size()) {
        Retry.push_back(Lines[I]);
        RetryAfter = std::max(RetryAfter, shedRetryAfterMs(Resp[I]));
      }
    }
    if (Resp.size() != Lines.size())
      ++CS.Malformed; // Response-count mismatch is a protocol break.
    if (Retry.empty())
      return true;
    // Honor the hint with exponential backoff: hint * 2^attempt.
    CS.Retries += Retry.size();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::uint64_t(RetryAfter) << Attempt));
    Lines = std::move(Retry);
  }
  return true;
}

/// Drives one full stream (loads + queries [+ stats]) over a channel.
bool runStream(Channel &Ch, const QueryStream &Stream, const Options &O,
               ClientStats &CS) {
  for (const auto &Batch : Stream.Batches) {
    if (interruptRequested())
      return true;
    if (!runBatch(Ch, Batch, O, CS))
      return false;
    if (O.Qps) {
      // Pace: this batch's share of a second at the target rate.
      std::uint64_t DelayUs =
          std::uint64_t(Batch.size()) * 1'000'000 / O.Qps;
      std::this_thread::sleep_for(std::chrono::microseconds(DelayUs));
    }
  }
  return true;
}

/// Final `stats` round-trip: extracts the daemon's unsound counter.
bool fetchStats(Channel &Ch, const Options &O, ClientStats &CS) {
  if (!Ch.writeAll("stats\n\n"))
    return false;
  std::vector<std::string> Resp;
  bool TimedOut = false;
  if (!Ch.readBatch(Resp, O.HangTimeoutMs, TimedOut)) {
    CS.Hang = TimedOut;
    return false;
  }
  for (const std::string &L : Resp) {
    std::size_t Pos = L.find("unsound=");
    if (Pos != std::string::npos)
      CS.Unsound += std::strtoull(L.c_str() + Pos + 8, nullptr, 10);
  }
  return true;
}

int connectSocket(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return -1;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  // The daemon may still be binding; retry briefly.
  for (int Try = 0; Try < 50; ++Try) {
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return Fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ::close(Fd);
  return -1;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: sldb-load (--spawn SLDBD [daemon args...] | --socket PATH)\n"
      "                 [options]\n"
      "  --sessions N        concurrent debug sessions in the stream (4)\n"
      "  --modules N         modules per session (2)\n"
      "  --queries N         queries per session (100)\n"
      "  --seed N            first module seed (1)\n"
      "  --shuffle-seed N    session-interleave shuffle (0 = round-robin)\n"
      "  --concurrency N     client threads, socket mode only (1)\n"
      "  --qps N             request pacing (0 = full speed)\n"
      "  --duration SECS     soak: iterate fresh streams for SECS\n"
      "  --hang-timeout-ms N no-response hang threshold (30000)\n"
      "  --expect-sound      fail on malformed responses or unsound>0\n"
      "  --quiet             suppress the report\n"
      "Everything after --spawn SLDBD up to the next --option is passed\n"
      "to the spawned daemon.\n");
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    const char *Arg;
    if (A == "--spawn" && (Arg = next())) {
      O.Spawn = Arg;
      // Slurp daemon args until the next --option of ours.
      while (I + 1 < argc) {
        std::string Peek = argv[I + 1];
        if (Peek.rfind("--sessions", 0) == 0 || Peek.rfind("--modules", 0) == 0 ||
            Peek.rfind("--queries", 0) == 0 || Peek.rfind("--seed", 0) == 0 ||
            Peek.rfind("--shuffle-seed", 0) == 0 ||
            Peek.rfind("--concurrency", 0) == 0 || Peek.rfind("--qps", 0) == 0 ||
            Peek.rfind("--duration", 0) == 0 ||
            Peek.rfind("--hang-timeout-ms", 0) == 0 ||
            Peek.rfind("--expect-sound", 0) == 0 ||
            Peek.rfind("--quiet", 0) == 0 || Peek.rfind("--socket", 0) == 0)
          break;
        O.DaemonArgs.push_back(argv[++I]);
      }
    } else if (A == "--socket" && (Arg = next()))
      O.Socket = Arg;
    else if (A == "--sessions" && (Arg = next()))
      O.Sessions = static_cast<unsigned>(std::strtoul(Arg, nullptr, 10));
    else if (A == "--modules" && (Arg = next()))
      O.Modules = static_cast<unsigned>(std::strtoul(Arg, nullptr, 10));
    else if (A == "--queries" && (Arg = next()))
      O.Queries = static_cast<unsigned>(std::strtoul(Arg, nullptr, 10));
    else if (A == "--seed" && (Arg = next()))
      O.Seed = static_cast<std::uint32_t>(std::strtoul(Arg, nullptr, 10));
    else if (A == "--shuffle-seed" && (Arg = next()))
      O.ShuffleSeed = std::strtoull(Arg, nullptr, 10);
    else if (A == "--concurrency" && (Arg = next()))
      O.Concurrency = static_cast<unsigned>(std::strtoul(Arg, nullptr, 10));
    else if (A == "--qps" && (Arg = next()))
      O.Qps = static_cast<unsigned>(std::strtoul(Arg, nullptr, 10));
    else if (A == "--duration" && (Arg = next()))
      O.DurationSec = static_cast<unsigned>(std::strtoul(Arg, nullptr, 10));
    else if (A == "--hang-timeout-ms" && (Arg = next()))
      O.HangTimeoutMs = static_cast<unsigned>(std::strtoul(Arg, nullptr, 10));
    else if (A == "--expect-sound")
      O.ExpectSound = true;
    else if (A == "--quiet")
      O.Quiet = true;
    else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "sldb-load: bad argument: %s\n", A.c_str());
      usage();
      return 2;
    }
  }
  if (O.Spawn.empty() == O.Socket.empty()) {
    std::fprintf(stderr,
                 "sldb-load: exactly one of --spawn / --socket required\n");
    usage();
    return 2;
  }

  installInterruptHandlers();
  // A daemon that dies mid-stream must surface as a diagnosed CRASH
  // (exit 1), not kill us with SIGPIPE on the next batch write.
  ::signal(SIGPIPE, SIG_IGN);

  // Spawn the daemon (pipe mode).
  pid_t Child = -1;
  Channel Pipe;
  if (!O.Spawn.empty()) {
    if (O.Concurrency > 1) {
      std::fprintf(stderr,
                   "sldb-load: --concurrency needs --socket; forcing 1\n");
      O.Concurrency = 1;
    }
    int In[2], Out[2]; // In: us -> daemon stdin; Out: daemon stdout -> us.
    if (::pipe(In) != 0 || ::pipe(Out) != 0) {
      std::perror("sldb-load: pipe");
      return 2;
    }
    Child = ::fork();
    if (Child < 0) {
      std::perror("sldb-load: fork");
      return 2;
    }
    if (Child == 0) {
      ::dup2(In[0], 0);
      ::dup2(Out[1], 1);
      ::close(In[0]);
      ::close(In[1]);
      ::close(Out[0]);
      ::close(Out[1]);
      std::vector<char *> Argv;
      Argv.push_back(const_cast<char *>(O.Spawn.c_str()));
      for (const std::string &S : O.DaemonArgs)
        Argv.push_back(const_cast<char *>(S.c_str()));
      Argv.push_back(nullptr);
      ::execv(O.Spawn.c_str(), Argv.data());
      std::perror("sldb-load: execv");
      ::_exit(127);
    }
    ::close(In[0]);
    ::close(Out[1]);
    Pipe.WrFd = In[1];
    Pipe.RdFd = Out[0];
  }

  const std::uint64_t StartUs = nowUs();
  const std::uint64_t SoakUs = std::uint64_t(O.DurationSec) * 1'000'000;
  std::vector<ClientStats> Stats(O.Concurrency);
  std::atomic<bool> Failed{false};

  auto clientBody = [&](unsigned C) {
    ClientStats &CS = Stats[C];
    Channel Ch;
    int SockFd = -1;
    if (!O.Socket.empty()) {
      SockFd = connectSocket(O.Socket);
      if (SockFd < 0) {
        std::fprintf(stderr, "sldb-load: cannot connect to %s\n",
                     O.Socket.c_str());
        Failed.store(true);
        return;
      }
      Ch.RdFd = Ch.WrFd = SockFd;
    } else {
      Ch = Pipe;
    }

    QueryStreamOptions QO;
    QO.Sessions = O.Sessions;
    QO.ModulesPerSession = O.Modules;
    QO.QueriesPerSession = O.Queries;
    // Distinct seed block and name prefix per client so modules and
    // sessions never collide across connections.
    QO.BaseSeed = O.Seed + C * 1000;
    QO.ShuffleSeed = O.ShuffleSeed ? O.ShuffleSeed + C : 0;
    if (C > 0)
      QO.NamePrefix = "c" + std::to_string(C) + ".";
    QueryStream Stream = generateQueryStream(QO);

    // Soak replays the same stream: iteration 2's loads answer with
    // cheap duplicate-name errors while the queries keep hammering the
    // modules (and any quarantine state) from iteration 1.
    do {
      if (!runStream(Ch, Stream, O, CS)) {
        Failed.store(true);
        break;
      }
    } while (!interruptRequested() && SoakUs && nowUs() - StartUs < SoakUs);

    if (!CS.Hang)
      fetchStats(Ch, O, CS);
    if (SockFd >= 0)
      ::close(SockFd);
  };

  if (O.Concurrency <= 1) {
    clientBody(0);
  } else {
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < O.Concurrency; ++C)
      Threads.emplace_back(clientBody, C);
    for (std::thread &T : Threads)
      T.join();
  }

  // Shut the spawned daemon down and reap it.
  int DaemonStatus = 0;
  bool DaemonCrashed = false;
  if (Child > 0) {
    Pipe.writeAll("shutdown\n\n");
    ::close(Pipe.WrFd);
    // Give it a moment; then escalate.
    for (int Try = 0; Try < 100; ++Try) {
      pid_t W = ::waitpid(Child, &DaemonStatus, WNOHANG);
      if (W == Child) {
        Child = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (Child > 0) {
      ::kill(Child, SIGKILL);
      ::waitpid(Child, &DaemonStatus, 0);
      DaemonCrashed = true; // Would not exit: counts as a hang.
    } else if (WIFSIGNALED(DaemonStatus)) {
      DaemonCrashed = true;
    } else if (WIFEXITED(DaemonStatus) && WEXITSTATUS(DaemonStatus) != 0) {
      DaemonCrashed = true; // Includes the watchdog's exit 87.
    }
    ::close(Pipe.RdFd);
  }

  // Merge and report.
  ClientStats Total;
  bool Hang = false;
  for (ClientStats &CS : Stats) {
    Total.Ok += CS.Ok;
    Total.Err += CS.Err;
    Total.Shed += CS.Shed;
    Total.Retries += CS.Retries;
    Total.Malformed += CS.Malformed;
    Total.Batches += CS.Batches;
    Total.Unsound += CS.Unsound;
    Hang |= CS.Hang;
    Total.LatencyUs.insert(Total.LatencyUs.end(), CS.LatencyUs.begin(),
                           CS.LatencyUs.end());
  }
  if (!O.Quiet) {
    std::printf("batches:   %llu\n",
                static_cast<unsigned long long>(Total.Batches));
    std::printf("ok:        %llu\n", static_cast<unsigned long long>(Total.Ok));
    std::printf("err:       %llu\n",
                static_cast<unsigned long long>(Total.Err));
    std::printf("shed:      %llu (retried %llu)\n",
                static_cast<unsigned long long>(Total.Shed),
                static_cast<unsigned long long>(Total.Retries));
    std::printf("malformed: %llu\n",
                static_cast<unsigned long long>(Total.Malformed));
    std::printf("unsound:   %llu\n",
                static_cast<unsigned long long>(Total.Unsound));
    // An all-shed stream has no completed round trips: the summary says
    // n/a rather than a fabricated zero (support/Percentiles.h).
    std::printf("%s\n", latencyReportLine(Total.LatencyUs).c_str());
    if (Hang)
      std::printf("HANG: daemon stopped answering\n");
    if (DaemonCrashed)
      std::printf("CRASH: daemon did not exit cleanly\n");
  }

  if (Hang)
    return 3;
  if (DaemonCrashed || Failed.load())
    return 1;
  if (O.ExpectSound && (Total.Malformed || Total.Unsound))
    return 1;
  return 0;
}
