#!/usr/bin/env sh
# Fails if build-tree artifacts are tracked (or staged) in git again.
# PR 0 accidentally committed an entire build/ tree — object files,
# CMakeCache.txt, a 14k-line LastTest.log; .gitignore now blocks the
# directory and this check keeps the guarantee enforceable from ctest
# (registered as the tier-1 test `no_build_artifacts`).
#
# Usage: tools/check_no_build_artifacts.sh [repo-root]

ROOT=${1:-$(dirname "$0")/..}
cd "$ROOT" || exit 2

# Not a git checkout (e.g. an exported tarball): nothing to verify.
git rev-parse --is-inside-work-tree >/dev/null 2>&1 || exit 0

BAD=$(git ls-files --cached -- \
  'build/*' 'build-*/*' 'cmake-build-*/*' '*.o' '*.a' \
  '*CMakeCache.txt' '*LastTest.log' 'fuzz-failures/*' 'fuzz-crashes/*' \
  'fuzz-shards/*' 'fuzz-property/*' '*.sock' 'service-soak-*/*')
if [ -n "$BAD" ]; then
  echo "error: build artifacts are tracked in git:" >&2
  echo "$BAD" | head -20 >&2
  N=$(echo "$BAD" | wc -l)
  echo "($N files; unstage them with: git rm -r --cached build/)" >&2
  exit 1
fi
exit 0
