#!/usr/bin/env sh
# Soaks the classification daemon under fault injection: sldb-load
# replays query streams against sldbd for a fixed wall-clock budget per
# defended fault point, asserting the full robustness envelope — zero
# crashes (any abnormal daemon exit, including the watchdog's 87), zero
# hangs (sldb-load exit 3), zero malformed responses, and an `unsound=0`
# counter in the daemon's final stats (a quarantined module answering
# Current/Recoverable would bump it).  Registered as the tier-1 ctest
# `service_soak`.
#
# Usage: tools/service_soak.sh <sldbd> <sldb-load> [seconds-per-fault]

set -e

SLDBD=$1
LOAD=$2
SECS=${3:-10}

if [ ! -x "$SLDBD" ] || [ ! -x "$LOAD" ]; then
  echo "usage: service_soak.sh <sldbd> <sldb-load> [seconds-per-fault]" >&2
  exit 2
fi

# One pristine pass, then every defended fault point in turn.  The
# injected corruption lands in each load's compiled tables; the eager
# classifier audit quarantines the module, and the rest of the stream
# keeps querying the degraded registry.
FAULTS="drop-dead-marker corrupt-marker-var corrupt-marker-stmt \
corrupt-hoist-key truncate-stmt-map corrupt-recovery-reg \
truncate-resident-at trap-vm-mid-run"

echo "soak: pristine, ${SECS}s"
"$LOAD" --spawn "$SLDBD" --jobs 4 --sessions 3 --modules 2 --queries 50 \
  --duration "$SECS" --expect-sound --quiet

for F in $FAULTS; do
  echo "soak: fault $F, ${SECS}s"
  "$LOAD" --spawn "$SLDBD" --jobs 4 --inject "$F" --inject-seed 3 \
    --sessions 3 --modules 2 --queries 50 \
    --duration "$SECS" --expect-sound --quiet
done

echo "soak: OK (no crash, no hang, no malformed response, unsound=0)"
