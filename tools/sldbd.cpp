//===- tools/sldbd.cpp - The classification daemon --------------*- C++ -*-===//
//
// Part of the sldb project (PLDI 1996 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `sldbd` — a long-lived server that loads compiled-module corpora and
/// answers classify / classify-all / explain / step queries for
/// concurrent debug sessions over the line protocol of
/// service/Protocol.h (stdin/stdout by default, a unix socket with
/// `--socket`).  Every request runs inside the robustness envelope:
/// fuel + wall deadlines, arena/session byte budgets, batch admission
/// control with retry-after shedding, and first-failure module
/// quarantine (DESIGN.md "Service robustness model").
///
///   sldbd                         # serve stdin/stdout
///   sldbd --socket /tmp/sldbd.sock --jobs 8
///   sldbd --replay stream.txt     # batch mode: process a file, exit
///   sldbd --inject truncate-stmt-map --inject-seed 7   # soak target
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "support/FaultInjector.h"
#include "support/Interrupt.h"
#include "support/Stats.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sldb;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: sldbd [options]\n"
      "  --jobs N              worker threads for query batches (default 1)\n"
      "  --socket PATH         serve a unix-domain socket instead of stdio\n"
      "  --replay FILE         process FILE as protocol batches, then exit\n"
      "  --fuel N              VM fuel per request (default 2000000)\n"
      "  --wall-ms N           cooperative per-request wall deadline\n"
      "  --hard-wall-ms N      watchdog: _exit(87) if one batch exceeds N\n"
      "  --arena-limit BYTES   per-load arena budget (0 = unlimited)\n"
      "  --session-limit BYTES per-session arena budget (0 = unlimited)\n"
      "  --queue-depth N       admitted requests per batch (0 = unlimited)\n"
      "  --retry-after-ms N    hint carried by shed responses\n"
      "  --max-modules N       registry capacity\n"
      "  --inject FAULT        arm a FaultInjector point for loads\n"
      "  --inject-seed N       victim-selection seed (default 1)\n"
      "  --stats               dump the stats registry on exit\n");
}

bool parseArgU64(const char *S, std::uint64_t &Out) {
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (errno != 0 || !End || *End)
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ServiceLimits Limits;
  unsigned Jobs = 1;
  std::string SocketPath, ReplayPath, InjectName;
  std::uint64_t InjectSeed = 1;
  std::uint32_t HardWallMs = 60'000;
  bool DumpStats = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    std::uint64_t V = 0;
    const char *Arg;
    if (A == "--jobs" && (Arg = next()) && parseArgU64(Arg, V))
      Jobs = static_cast<unsigned>(V);
    else if (A == "--socket" && (Arg = next()))
      SocketPath = Arg;
    else if (A == "--replay" && (Arg = next()))
      ReplayPath = Arg;
    else if (A == "--fuel" && (Arg = next()) && parseArgU64(Arg, V))
      Limits.RequestFuel = V;
    else if (A == "--wall-ms" && (Arg = next()) && parseArgU64(Arg, V))
      Limits.RequestWallMs = static_cast<std::uint32_t>(V);
    else if (A == "--hard-wall-ms" && (Arg = next()) && parseArgU64(Arg, V))
      HardWallMs = static_cast<std::uint32_t>(V);
    else if (A == "--arena-limit" && (Arg = next()) && parseArgU64(Arg, V))
      Limits.LoadArenaBytes = V;
    else if (A == "--session-limit" && (Arg = next()) && parseArgU64(Arg, V))
      Limits.SessionArenaBytes = V;
    else if (A == "--queue-depth" && (Arg = next()) && parseArgU64(Arg, V))
      Limits.QueueDepth = V;
    else if (A == "--retry-after-ms" && (Arg = next()) && parseArgU64(Arg, V))
      Limits.RetryAfterMs = static_cast<std::uint32_t>(V);
    else if (A == "--max-modules" && (Arg = next()) && parseArgU64(Arg, V))
      Limits.MaxModules = V;
    else if (A == "--inject" && (Arg = next()))
      InjectName = Arg;
    else if (A == "--inject-seed" && (Arg = next()) && parseArgU64(Arg, V))
      InjectSeed = V;
    else if (A == "--stats")
      DumpStats = true;
    else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "sldbd: bad argument: %s\n", A.c_str());
      usage();
      return 2;
    }
  }

  installInterruptHandlers();

  if (!InjectName.empty()) {
    const FaultPoint *P = FaultInjector::findPoint(InjectName);
    if (!P) {
      std::fprintf(stderr, "sldbd: unknown fault point '%s'\n",
                   InjectName.c_str());
      return 2;
    }
    // Armed on the main thread: loads (barrier verbs) run here, so the
    // injected corruption lands in the compiled tables; the classifier
    // build inside load runs under suspend() and judges the damage.
    FaultInjector::arm(P->Id, static_cast<std::uint32_t>(InjectSeed));
  }

  ServiceCore Core(Limits, Jobs);
  int Ret = 0;
  {
    Server Srv(Core, HardWallMs);
    if (!ReplayPath.empty()) {
      std::FILE *F = std::fopen(ReplayPath.c_str(), "rb");
      if (!F) {
        std::fprintf(stderr, "sldbd: cannot open %s\n", ReplayPath.c_str());
        return 2;
      }
      Ret = Srv.runStdio(F, stdout);
      std::fclose(F);
    } else if (!SocketPath.empty()) {
      Ret = Srv.runSocket(SocketPath);
    } else {
      Ret = Srv.runStdio(stdin, stdout);
    }
  }

  if (DumpStats)
    std::fputs(Stats::report().c_str(), stderr);
  return Ret;
}
